package query

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"frappe/internal/graph"
	"frappe/internal/model"
	"frappe/internal/store"
)

// fixture builds a micro-kernel graph containing everything the paper's
// Figures 3-6 queries need.
type fixture struct {
	g     *graph.Graph
	names map[string]graph.NodeID
}

func newFixture() *fixture {
	f := &fixture{g: graph.New(), names: map[string]graph.NodeID{}}
	return f
}

func (f *fixture) node(key string, typ model.NodeType, short string, extra ...any) graph.NodeID {
	props := graph.P(model.PropShortName, short, model.PropName, short)
	props = append(props, graph.P(extra...)...)
	id := f.g.AddNode(typ, props)
	f.names[key] = id
	return id
}

func (f *fixture) edge(from, to string, typ model.EdgeType, props ...any) graph.EdgeID {
	return f.g.AddEdge(f.names[from], f.names[to], typ, graph.P(props...))
}

func buildFixture() *fixture {
	f := newFixture()

	// --- Figure 3 material: module -> objects -> files -> fields ---
	f.node("mod", model.NodeModule, "wakeup.elf")
	f.node("wake.o", model.NodeObjectFile, "wake.o")
	f.node("wake.c", model.NodeFile, "wake.c")
	f.node("other.c", model.NodeFile, "other.c")
	f.node("id1", model.NodeField, "id")  // inside the module
	f.node("id2", model.NodeField, "id")  // outside the module
	f.node("idg", model.NodeGlobal, "id") // same name, different type
	f.edge("mod", "wake.o", model.EdgeLinkedFrom, model.PropLinkOrder, 0)
	f.edge("wake.o", "wake.c", model.EdgeCompiledFrom)
	f.edge("wake.c", "id1", model.EdgeFileContains)
	f.edge("other.c", "id2", model.EdgeFileContains)
	f.edge("wake.c", "idg", model.EdgeFileContains)

	// --- Figure 4 material: a reference edge with NAME_* position ---
	f.node("user_fn", model.NodeFunction, "ref_user")
	f.edge("user_fn", "id1", model.EdgeReadsMember,
		model.PropNameFileID, 3,
		model.PropNameStartLine, 104,
		model.PropNameStartCol, 16,
		model.PropNameEndLine, 104,
		model.PropNameEndCol, 18,
	)

	// --- Figure 5 material ---
	f.node("pkt", model.NodeStruct, "packet_command")
	f.node("cmd", model.NodeField, "cmd")
	f.edge("pkt", "cmd", model.EdgeContains)
	f.node("from", model.NodeFunction, "sr_media_change")
	f.node("to", model.NodeFunction, "get_sectorsize")
	f.node("direct", model.NodeFunction, "sr_do_ioctl")
	f.node("late", model.NodeFunction, "sr_late_helper")
	f.node("writer", model.NodeFunction, "write_cmd")
	f.node("other_writer", model.NodeFunction, "never_called_writer")
	f.edge("from", "direct", model.EdgeCalls, model.PropUseStartLine, 230, model.PropUseFileID, 7)
	f.edge("from", "to", model.EdgeCalls, model.PropUseStartLine, 236, model.PropUseFileID, 7)
	// A call after line 236 must be excluded by the WHERE comparison.
	f.edge("from", "late", model.EdgeCalls, model.PropUseStartLine, 240, model.PropUseFileID, 7)
	f.edge("direct", "writer", model.EdgeCalls, model.PropUseStartLine, 310)
	f.edge("late", "writer", model.EdgeCalls, model.PropUseStartLine, 410)
	f.edge("writer", "cmd", model.EdgeWritesMember, model.PropUseStartLine, 50, model.PropUseFileID, 9)
	f.edge("other_writer", "cmd", model.EdgeWritesMember, model.PropUseStartLine, 60)

	// --- Figure 6 material ---
	f.node("pci", model.NodeFunction, "pci_read_bases")
	f.node("ca", model.NodeFunction, "closure_a")
	f.node("cb", model.NodeFunction, "closure_b")
	f.node("cc", model.NodeFunction, "closure_c")
	f.edge("pci", "ca", model.EdgeCalls, model.PropUseStartLine, 1)
	f.edge("ca", "cb", model.EdgeCalls, model.PropUseStartLine, 2)
	f.edge("ca", "cc", model.EdgeCalls, model.PropUseStartLine, 3)
	f.edge("cc", "cb", model.EdgeCalls, model.PropUseStartLine, 4)

	// --- Table 6 material: struct/union/enum_def named foo ---
	f.node("foo_s", model.NodeStruct, "foo")
	f.node("foo_u", model.NodeUnion, "foo")
	f.node("foo_e", model.NodeEnumDef, "foo")
	f.node("foo_f", model.NodeFunction, "foo") // function: symbol+container, not type

	return f
}

func run(t *testing.T, src graph.Source, text string) *Result {
	t.Helper()
	res, err := Run(context.Background(), src, text)
	if err != nil {
		t.Fatalf("Run(%q): %v", text, err)
	}
	return res
}

// nodeCol extracts node IDs from a single-column result, sorted.
func nodeCol(t *testing.T, res *Result, col int) []graph.NodeID {
	t.Helper()
	var out []graph.NodeID
	for _, row := range res.Rows {
		v := row[col]
		if v.Kind != ValNode {
			t.Fatalf("column %d is %v, not a node", col, v.Kind)
		}
		out = append(out, v.Node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func wantNodes(t *testing.T, f *fixture, got []graph.NodeID, keys ...string) {
	t.Helper()
	var want []graph.NodeID
	for _, k := range keys {
		want = append(want, f.names[k])
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

const figure3Query = `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN n`

const figure4Query = `
START n=node:node_auto_index('short_name: id')
WHERE (n) <-[{NAME_FILE_ID: 3, NAME_START_LINE: 104, NAME_START_COL: 16}]- ()
RETURN n`

const figure5Query = `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`

const figure6Query = `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`

func TestFigure3CodeSearch(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, figure3Query)
	wantNodes(t, f, nodeCol(t, res, 0), "id1")
}

func TestFigure4GoToDefinition(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, figure4Query)
	wantNodes(t, f, nodeCol(t, res, 0), "id1")
}

func TestFigure5Debugging(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, figure5Query)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d: %+v", len(res.Rows), res.Rows)
	}
	row := res.Rows[0]
	if row[0].Node != f.names["writer"] {
		t.Fatalf("writer = %v, want %d", row[0], f.names["writer"])
	}
	if row[1].Scalar.AsInt() != 50 {
		t.Fatalf("use_start_line = %v, want 50", row[1])
	}
	if res.Columns[1] != "write.use_start_line" {
		t.Fatalf("column name = %q", res.Columns[1])
	}
}

func TestFigure6Comprehension(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, figure6Query)
	wantNodes(t, f, nodeCol(t, res, 0), "ca", "cb", "cc")
}

func TestTable6SyntaxEquivalence(t *testing.T) {
	f := buildFixture()
	// Cypher 1.x: index query with grouped TYPE terms.
	res1 := run(t, f.g, `
START n=node:node_auto_index('(TYPE: struct TYPE: union TYPE: enum_def) AND NAME: foo')
RETURN n`)
	// Cypher 2.x: grouped labels. struct/union/enum_def are the types
	// that are both containers and types.
	res2 := run(t, f.g, `MATCH (n:container:type{name: "foo"}) RETURN n`)
	got1 := nodeCol(t, res1, 0)
	got2 := nodeCol(t, res2, 0)
	wantNodes(t, f, got1, "foo_s", "foo_u", "foo_e")
	wantNodes(t, f, got2, "foo_s", "foo_u", "foo_e")
}

// TestMemoryDiskParity runs every benchmark query against both the
// in-memory graph and the disk store and demands identical results.
func TestMemoryDiskParity(t *testing.T) {
	f := buildFixture()
	dir := filepath.Join(t.TempDir(), "db")
	if err := store.Write(dir, f.g); err != nil {
		t.Fatal(err)
	}
	db, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	queries := []string{
		figure3Query,
		figure4Query,
		figure5Query,
		figure6Query,
		`MATCH (n:container:type{name: "foo"}) RETURN n`,
		`MATCH (n:function) RETURN count(*)`,
		`START n=node(*) RETURN n.short_name ORDER BY n.short_name LIMIT 5`,
	}
	for _, q := range queries {
		mem := run(t, f.g, q)
		disk := run(t, db, q)
		if keyOf(mem) != keyOf(disk) {
			t.Errorf("parity failure for %q:\nmem:  %s\ndisk: %s", q, keyOf(mem), keyOf(disk))
		}
		// Cold results must equal warm results.
		db.DropCaches()
		cold := run(t, db, q)
		if keyOf(disk) != keyOf(cold) {
			t.Errorf("cold/warm mismatch for %q", q)
		}
	}
}

func keyOf(r *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, ","))
	sb.WriteByte('\n')
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var rb strings.Builder
		for _, v := range row {
			v.key(&rb)
			rb.WriteByte('|')
		}
		lines[i] = rb.String()
	}
	sort.Strings(lines)
	sb.WriteString(strings.Join(lines, "\n"))
	return sb.String()
}

func TestAggregationGrouping(t *testing.T) {
	f := buildFixture()
	// Count calls per caller.
	res := run(t, f.g, `
MATCH (n:function) -[:calls]-> m
RETURN n.short_name AS caller, count(m) AS callees
ORDER BY callees DESC, caller`)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	top := res.Rows[0]
	if top[0].Scalar.AsString() != "sr_media_change" || top[1].Scalar.AsInt() != 3 {
		t.Fatalf("top = %v %v", top[0], top[1])
	}
	// Groups must be exhaustive: total = number of calls edges.
	var total int64
	for _, row := range res.Rows {
		total += row[1].Scalar.AsInt()
	}
	want := graph.ComputeMetrics(f.g)
	_ = want
	calls := graph.CountByEdgeType(f.g)[model.EdgeCalls]
	if total != calls {
		t.Fatalf("sum of group counts = %d, want %d", total, calls)
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `MATCH (n:function{short_name: 'does_not_exist'}) RETURN count(n)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Scalar.AsInt() != 0 {
		t.Fatalf("count over empty = %+v", res.Rows)
	}
}

func TestMinMaxSumAvgCollect(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n{short_name: 'sr_media_change'}) -[r:calls]-> m
RETURN min(r.use_start_line), max(r.use_start_line), sum(r.use_start_line), avg(r.use_start_line), collect(m.short_name)`)
	row := res.Rows[0]
	if row[0].Scalar.AsInt() != 230 || row[1].Scalar.AsInt() != 240 {
		t.Fatalf("min/max = %v/%v", row[0], row[1])
	}
	if row[2].Scalar.AsInt() != 230+236+240 {
		t.Fatalf("sum = %v", row[2])
	}
	if row[3].Scalar.AsInt() != (230+236+240)/3 {
		t.Fatalf("avg = %v", row[3])
	}
	if row[4].Kind != ValList || len(row[4].List) != 3 {
		t.Fatalf("collect = %v", row[4])
	}
}

func TestOptionalMatch(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
START n=node:node_auto_index('short_name: closure_b')
OPTIONAL MATCH n -[:calls]-> m
RETURN n, m`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("m should be null, got %v", res.Rows[0][1])
	}
}

func TestWhereNullSemantics(t *testing.T) {
	f := buildFixture()
	// closure_b has no outgoing calls; property of missing prop is null;
	// null comparisons must filter out, not error.
	res := run(t, f.g, `
MATCH (n:function)
WHERE n.no_such_prop = 3
RETURN n`)
	if len(res.Rows) != 0 {
		t.Fatalf("null comparison produced rows: %+v", res.Rows)
	}
	res = run(t, f.g, `
MATCH (n:function{short_name:'foo'})
WHERE NOT has(n.no_such_prop)
RETURN n`)
	if len(res.Rows) != 1 {
		t.Fatalf("has() rows = %d", len(res.Rows))
	}
}

func TestSkipLimitOrder(t *testing.T) {
	f := buildFixture()
	all := run(t, f.g, `MATCH (n:function) RETURN n.short_name AS s ORDER BY s`)
	limited := run(t, f.g, `MATCH (n:function) RETURN n.short_name AS s ORDER BY s SKIP 1 LIMIT 2`)
	if len(limited.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(limited.Rows))
	}
	if limited.Rows[0][0].Scalar.AsString() != all.Rows[1][0].Scalar.AsString() {
		t.Fatalf("skip mismatch: %v vs %v", limited.Rows[0][0], all.Rows[1][0])
	}
	// Descending order reverses.
	desc := run(t, f.g, `MATCH (n:function) RETURN n.short_name AS s ORDER BY s DESC LIMIT 1`)
	if desc.Rows[0][0].Scalar.AsString() != all.Rows[len(all.Rows)-1][0].Scalar.AsString() {
		t.Fatalf("desc top = %v", desc.Rows[0][0])
	}
}

func TestFunctions(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[r:calls]-> m
RETURN id(n), type(r), labels(m), length(collect(m)), coalesce(n.zzz, 'dflt')`)
	row := res.Rows[0]
	if row[0].Scalar.AsInt() != int64(f.names["pci"]) {
		t.Fatalf("id() = %v", row[0])
	}
	if row[1].Scalar.AsString() != "calls" {
		t.Fatalf("type() = %v", row[1])
	}
	if row[2].Kind != ValList || row[2].List[0].Scalar.AsString() != "function" {
		t.Fatalf("labels() = %v", row[2])
	}
	if row[3].Scalar.AsInt() != 1 {
		t.Fatalf("length(collect) = %v", row[3])
	}
	if row[4].Scalar.AsString() != "dflt" {
		t.Fatalf("coalesce = %v", row[4])
	}
}

func TestVarLengthBoundsExecution(t *testing.T) {
	f := buildFixture()
	// Exactly 2 hops from pci: ca->cb and ca->cc give {cb, cc}.
	res := run(t, f.g, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*2]-> m
RETURN distinct m`)
	wantNodes(t, f, nodeCol(t, res, 0), "cb", "cc")

	// 0.. includes the start node itself.
	res = run(t, f.g, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*0..1]-> m
RETURN distinct m`)
	wantNodes(t, f, nodeCol(t, res, 0), "pci", "ca")
}

func TestUndirectedAndIncomingMatch(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
START n=node:node_auto_index('short_name: closure_b')
MATCH n <-[:calls]- m
RETURN distinct m`)
	wantNodes(t, f, nodeCol(t, res, 0), "ca", "cc")

	res = run(t, f.g, `
START n=node:node_auto_index('short_name: closure_c')
MATCH n -[:calls]- m
RETURN distinct m`)
	wantNodes(t, f, nodeCol(t, res, 0), "ca", "cb")
}

func TestRelationshipUniquenessWithinMatch(t *testing.T) {
	// A diamond a->b->c, a->c: path a-[*]->c enumerations must not reuse
	// edges, so the count of paths is exactly 2.
	g := graph.New()
	a := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "a"))
	b := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "b"))
	c := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "c"))
	g.AddEdge(a, b, model.EdgeCalls, nil)
	g.AddEdge(b, c, model.EdgeCalls, nil)
	g.AddEdge(a, c, model.EdgeCalls, nil)
	res := run(t, g, `
START n=node:node_auto_index('short_name: a')
MATCH n -[:calls*]-> (m{short_name: 'c'})
RETURN m`)
	if len(res.Rows) != 2 {
		t.Fatalf("paths = %d, want 2", len(res.Rows))
	}
}

func TestContextDeadlineAbortsExplosion(t *testing.T) {
	// A ladder graph with parallel rungs has exponentially many paths;
	// the query must abort on deadline rather than hang — reproducing the
	// paper's ">15 minutes, aborted" Figure 6 run in miniature.
	g := graph.New()
	const layers = 24
	prev := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "entry"))
	for i := 0; i < layers; i++ {
		next := g.AddNode(model.NodeFunction, nil)
		g.AddEdge(prev, next, model.EdgeCalls, nil)
		g.AddEdge(prev, next, model.EdgeCalls, nil) // parallel edge: 2^layers paths
		prev = next
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, g, `
START n=node:node_auto_index('short_name: entry')
MATCH n -[:calls*]-> m
RETURN distinct m`)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v", elapsed)
	}
}

func TestExecErrors(t *testing.T) {
	f := buildFixture()
	ctx := context.Background()
	cases := []string{
		`MATCH (n) RETURN unbound_var`,
		`START n=node:wrong_index('a: b') RETURN n`,
		`START n=node:node_auto_index('((') RETURN n`,
		`MATCH (n) RETURN n LIMIT -1`,
		`MATCH (n) RETURN count(n) MATCH (m) RETURN m`,
		`MATCH (n:function) WHERE count(n) > 1 RETURN n`,
		`MATCH (n)`,
	}
	for _, q := range cases {
		if _, err := Run(ctx, f.g, q); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestStartByID(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `START n=node(0) RETURN n.short_name`)
	if res.Rows[0][0].Scalar.AsString() != "wakeup.elf" {
		t.Fatalf("node 0 = %v", res.Rows[0][0])
	}
	// Out-of-range IDs are skipped, not errors (Neo4j behaviour differs,
	// but queries over stale IDs shouldn't crash the service).
	res = run(t, f.g, `START n=node(999999) RETURN n`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestWithChainingAndWhere(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:function) -[r:calls]-> m
WITH n, count(m) AS fanout
WHERE fanout >= 2
RETURN n.short_name AS s ORDER BY s`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][0].Scalar.AsString() != "closure_a" || res.Rows[1][0].Scalar.AsString() != "sr_media_change" {
		t.Fatalf("rows = %v %v", res.Rows[0][0], res.Rows[1][0])
	}
}

func TestDistinctNonDistinctCounts(t *testing.T) {
	f := buildFixture()
	// Without distinct, figure 6's closure reports one row per path.
	all := run(t, f.g, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN m`)
	distinct := run(t, f.g, figure6Query)
	if len(all.Rows) <= len(distinct.Rows) {
		t.Fatalf("path rows %d should exceed distinct rows %d", len(all.Rows), len(distinct.Rows))
	}
	// pci: paths = ca, ca-cb, ca-cc, ca-cc-cb = 4; distinct = 3.
	if len(all.Rows) != 4 || len(distinct.Rows) != 3 {
		t.Fatalf("paths=%d distinct=%d, want 4 and 3", len(all.Rows), len(distinct.Rows))
	}
}

func TestXorAndInOperators(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:function)
WITH collect(n.short_name) AS names
RETURN 'write_cmd' IN names, 'nope' IN names, true XOR false, true XOR true`)
	row := res.Rows[0]
	if !row[0].Scalar.AsBool() || row[1].Scalar.AsBool() {
		t.Fatalf("IN = %v %v", row[0], row[1])
	}
	if !row[2].Scalar.AsBool() || row[3].Scalar.AsBool() {
		t.Fatalf("XOR = %v %v", row[2], row[3])
	}
}

func TestRegexLikeOperator(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:function)
WHERE n.short_name =~ 'sr_*'
RETURN count(n)`)
	if res.Rows[0][0].Scalar.AsInt() < 2 {
		t.Fatalf("wildcard matches = %v", res.Rows[0][0])
	}
}

func TestCountDistinct(t *testing.T) {
	f := buildFixture()
	// Two fields named id exist; count vs count distinct over names.
	res := run(t, f.g, `
MATCH (n:field{short_name: 'id'})
RETURN count(n.short_name), count(distinct n.short_name)`)
	row := res.Rows[0]
	if row[0].Scalar.AsInt() != 2 || row[1].Scalar.AsInt() != 1 {
		t.Fatalf("counts = %v %v", row[0], row[1])
	}
}

func TestWithSkipLimitOrder(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:function)
WITH n.short_name AS s ORDER BY s SKIP 2 LIMIT 3
RETURN collect(s)`)
	got := res.Rows[0][0]
	if got.Kind != ValList || len(got.List) != 3 {
		t.Fatalf("collected = %v", got)
	}
	all := run(t, f.g, `MATCH (n:function) RETURN n.short_name AS s ORDER BY s`)
	if got.List[0].Scalar.AsString() != all.Rows[2][0].Scalar.AsString() {
		t.Fatalf("WITH SKIP mismatch: %v vs %v", got.List[0], all.Rows[2][0])
	}
}

func TestArithmeticInReturn(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:function) -[r:calls{use_start_line: 236}]-> m
RETURN r.use_start_line + 10, r.use_start_line % 100, -r.use_start_line`)
	row := res.Rows[0]
	if row[0].Scalar.AsInt() != 246 || row[1].Scalar.AsInt() != 36 || row[2].Scalar.AsInt() != -236 {
		t.Fatalf("arithmetic = %v %v %v", row[0], row[1], row[2])
	}
}

func TestStringConcatAndCase(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n:module)
RETURN toUpper(n.short_name), 'mod:' + n.short_name LIMIT 1`)
	row := res.Rows[0]
	if row[0].Scalar.AsString() != "WAKEUP.ELF" || row[1].Scalar.AsString() != "mod:wakeup.elf" {
		t.Fatalf("strings = %v %v", row[0], row[1])
	}
}

func TestStartNodeEndNode(t *testing.T) {
	f := buildFixture()
	res := run(t, f.g, `
MATCH (n{short_name:'pci_read_bases'}) -[r:calls]-> m
RETURN startNode(r), endNode(r)`)
	row := res.Rows[0]
	if row[0].Node != f.names["pci"] || row[1].Node != f.names["ca"] {
		t.Fatalf("start/end = %v %v", row[0], row[1])
	}
}

// TestCompareValsExtremeIDs: ORDER BY comparison of entity IDs must not
// go through int(a-b) — for IDs on opposite extremes the subtraction
// overflows int64 (and truncates on 32-bit ints), flipping the sign and
// corrupting sort order. Regression test for the explicit comparison.
func TestCompareValsExtremeIDs(t *testing.T) {
	loN := Val{Kind: ValNode, Node: graph.NodeID(-(int64(1) << 62))}
	hiN := Val{Kind: ValNode, Node: graph.NodeID(int64(1) << 62)}
	if c := compareVals(loN, hiN); c >= 0 {
		t.Fatalf("compareVals(min node, max node) = %d, want < 0", c)
	}
	if c := compareVals(hiN, loN); c <= 0 {
		t.Fatalf("compareVals(max node, min node) = %d, want > 0", c)
	}
	if c := compareVals(hiN, hiN); c != 0 {
		t.Fatalf("compareVals(x, x) = %d, want 0", c)
	}
	// Same wrap for edges, plus a pair whose difference exceeds 32 bits
	// but not 64 — the case int() truncation used to corrupt.
	loE := Val{Kind: ValEdge, Edge: graph.EdgeID(-(int64(1) << 62))}
	hiE := Val{Kind: ValEdge, Edge: graph.EdgeID(int64(1) << 62)}
	if c := compareVals(loE, hiE); c >= 0 {
		t.Fatalf("compareVals(min edge, max edge) = %d, want < 0", c)
	}
	a := Val{Kind: ValEdge, Edge: graph.EdgeID(0)}
	b := Val{Kind: ValEdge, Edge: graph.EdgeID(int64(1) << 33)}
	if c := compareVals(a, b); c >= 0 {
		t.Fatalf("compareVals(0, 1<<33) = %d, want < 0", c)
	}
}
