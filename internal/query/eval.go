package query

import (
	"fmt"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// evalExpr evaluates a non-aggregate expression against a row.
func (ex *exec) evalExpr(e Expr, row Row) (Val, error) {
	switch t := e.(type) {
	case *LiteralExpr:
		if t.Null {
			return nullVal, nil
		}
		return ScalarVal(t.Val), nil

	case *VarExpr:
		v, ok := row[t.Name]
		if !ok {
			return nullVal, &unknownVarError{name: t.Name}
		}
		return v, nil

	case *PropExpr:
		base, err := ex.evalExpr(t.Base, row)
		if err != nil {
			return nullVal, err
		}
		switch base.Kind {
		case ValNull:
			return nullVal, nil
		case ValNode:
			if v, ok := ex.src.NodeProp(base.Node, t.Key); ok {
				return ScalarVal(v), nil
			}
			return nullVal, nil
		case ValEdge:
			if v, ok := ex.src.EdgeProp(base.Edge, t.Key); ok {
				return ScalarVal(v), nil
			}
			return nullVal, nil
		}
		return nullVal, ex.errf("property access on a %s value", kindName(base.Kind))

	case *HasExpr:
		base, err := ex.evalExpr(t.Base, row)
		if err != nil {
			return nullVal, err
		}
		switch base.Kind {
		case ValNode:
			_, ok := ex.src.NodeProp(base.Node, t.Key)
			return ScalarVal(graph.Bool(ok)), nil
		case ValEdge:
			_, ok := ex.src.EdgeProp(base.Edge, t.Key)
			return ScalarVal(graph.Bool(ok)), nil
		}
		return ScalarVal(graph.Bool(false)), nil

	case *UnaryExpr:
		x, err := ex.evalExpr(t.X, row)
		if err != nil {
			return nullVal, err
		}
		switch t.Op {
		case "NOT":
			if x.IsNull() {
				return nullVal, nil
			}
			return ScalarVal(graph.Bool(!x.Truthy())), nil
		case "-":
			if x.IsNull() {
				return nullVal, nil
			}
			if x.Kind != ValScalar || x.Scalar.Kind() != graph.KindInt {
				return nullVal, ex.errf("unary minus on non-integer")
			}
			return ScalarVal(graph.Int(-x.Scalar.AsInt())), nil
		}
		return nullVal, ex.errf("unknown unary operator %q", t.Op)

	case *BinaryExpr:
		return ex.evalBinary(t, row)

	case *PatternExpr:
		ok, err := ex.patternHolds(t.Pattern, row)
		if err != nil {
			return nullVal, err
		}
		return ScalarVal(graph.Bool(ok)), nil

	case *CallExpr:
		return ex.evalCall(t, row)
	}
	return nullVal, ex.errf("cannot evaluate %T", e)
}

func kindName(k ValKind) string {
	switch k {
	case ValNull:
		return "null"
	case ValScalar:
		return "scalar"
	case ValNode:
		return "node"
	case ValEdge:
		return "relationship"
	case ValList:
		return "list"
	}
	return "?"
}

func (ex *exec) evalBinary(t *BinaryExpr, row Row) (Val, error) {
	switch t.Op {
	case "AND":
		l, err := ex.evalExpr(t.L, row)
		if err != nil {
			return nullVal, err
		}
		if !l.IsNull() && !l.Truthy() {
			return ScalarVal(graph.Bool(false)), nil
		}
		r, err := ex.evalExpr(t.R, row)
		if err != nil {
			return nullVal, err
		}
		if !r.IsNull() && !r.Truthy() {
			return ScalarVal(graph.Bool(false)), nil
		}
		if l.IsNull() || r.IsNull() {
			return nullVal, nil
		}
		return ScalarVal(graph.Bool(true)), nil
	case "OR":
		l, err := ex.evalExpr(t.L, row)
		if err != nil {
			return nullVal, err
		}
		if !l.IsNull() && l.Truthy() {
			return ScalarVal(graph.Bool(true)), nil
		}
		r, err := ex.evalExpr(t.R, row)
		if err != nil {
			return nullVal, err
		}
		if !r.IsNull() && r.Truthy() {
			return ScalarVal(graph.Bool(true)), nil
		}
		if l.IsNull() || r.IsNull() {
			return nullVal, nil
		}
		return ScalarVal(graph.Bool(false)), nil
	case "XOR":
		l, err := ex.evalExpr(t.L, row)
		if err != nil {
			return nullVal, err
		}
		r, err := ex.evalExpr(t.R, row)
		if err != nil {
			return nullVal, err
		}
		if l.IsNull() || r.IsNull() {
			return nullVal, nil
		}
		return ScalarVal(graph.Bool(l.Truthy() != r.Truthy())), nil
	}

	l, err := ex.evalExpr(t.L, row)
	if err != nil {
		return nullVal, err
	}
	r, err := ex.evalExpr(t.R, row)
	if err != nil {
		return nullVal, err
	}
	if l.IsNull() || r.IsNull() {
		return nullVal, nil
	}

	switch t.Op {
	case "=":
		return ScalarVal(graph.Bool(l.Equal(r))), nil
	case "<>":
		return ScalarVal(graph.Bool(!l.Equal(r))), nil
	case "<", "<=", ">", ">=":
		if l.Kind != ValScalar || r.Kind != ValScalar {
			return nullVal, nil
		}
		c, ok := l.Scalar.Compare(r.Scalar)
		if !ok {
			return nullVal, nil
		}
		var res bool
		switch t.Op {
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return ScalarVal(graph.Bool(res)), nil
	case "IN":
		if r.Kind != ValList {
			return nullVal, nil
		}
		for _, x := range r.List {
			if l.Equal(x) {
				return ScalarVal(graph.Bool(true)), nil
			}
		}
		return ScalarVal(graph.Bool(false)), nil
	case "+":
		if l.Kind == ValScalar && r.Kind == ValScalar &&
			l.Scalar.Kind() == graph.KindString && r.Scalar.Kind() == graph.KindString {
			return ScalarVal(graph.Str(l.Scalar.AsString() + r.Scalar.AsString())), nil
		}
		fallthrough
	case "-", "*", "/", "%":
		if l.Kind != ValScalar || r.Kind != ValScalar ||
			l.Scalar.Kind() != graph.KindInt || r.Scalar.Kind() != graph.KindInt {
			return nullVal, ex.errf("arithmetic %q on non-integers", t.Op)
		}
		a, b := l.Scalar.AsInt(), r.Scalar.AsInt()
		switch t.Op {
		case "+":
			return ScalarVal(graph.Int(a + b)), nil
		case "-":
			return ScalarVal(graph.Int(a - b)), nil
		case "*":
			return ScalarVal(graph.Int(a * b)), nil
		case "/":
			if b == 0 {
				return nullVal, ex.errf("division by zero")
			}
			return ScalarVal(graph.Int(a / b)), nil
		case "%":
			if b == 0 {
				return nullVal, ex.errf("modulo by zero")
			}
			return ScalarVal(graph.Int(a % b)), nil
		}
	case "=~":
		if l.Kind == ValScalar && r.Kind == ValScalar {
			return ScalarVal(graph.Bool(graph.WildcardMatch(r.Scalar.AsString(), l.Scalar.AsString()))), nil
		}
		return nullVal, nil
	}
	return nullVal, ex.errf("unknown operator %q", t.Op)
}

// isAggregateName reports whether the function aggregates over rows.
func isAggregateName(name string) bool {
	switch name {
	case "count", "sum", "min", "max", "avg", "collect":
		return true
	}
	return false
}

func (ex *exec) evalCall(t *CallExpr, row Row) (Val, error) {
	if isAggregateName(t.Name) {
		return nullVal, ex.errf("aggregate function %s() outside RETURN/WITH", t.Name)
	}
	args := make([]Val, len(t.Args))
	for i, a := range t.Args {
		v, err := ex.evalExpr(a, row)
		if err != nil {
			return nullVal, err
		}
		args[i] = v
	}
	switch t.Name {
	case "id":
		if len(args) != 1 {
			return nullVal, ex.errf("id() takes one argument")
		}
		switch args[0].Kind {
		case ValNode:
			return ScalarVal(graph.Int(int64(args[0].Node))), nil
		case ValEdge:
			return ScalarVal(graph.Int(int64(args[0].Edge))), nil
		case ValNull:
			return nullVal, nil
		}
		return nullVal, ex.errf("id() of a %s", kindName(args[0].Kind))
	case "type":
		if len(args) != 1 || args[0].Kind != ValEdge {
			if len(args) == 1 && args[0].IsNull() {
				return nullVal, nil
			}
			return nullVal, ex.errf("type() takes a relationship")
		}
		_, _, typ := ex.src.EdgeEnds(args[0].Edge)
		return ScalarVal(graph.Str(string(typ))), nil
	case "labels":
		if len(args) != 1 || args[0].Kind != ValNode {
			return nullVal, ex.errf("labels() takes a node")
		}
		nt := ex.src.NodeType(args[0].Node)
		out := []Val{ScalarVal(graph.Str(string(nt)))}
		for _, l := range model.LabelsFor(nt) {
			out = append(out, ScalarVal(graph.Str(l)))
		}
		return ListVal(out), nil
	case "length", "size":
		if len(args) != 1 {
			return nullVal, ex.errf("%s() takes one argument", t.Name)
		}
		switch args[0].Kind {
		case ValList:
			return ScalarVal(graph.Int(int64(len(args[0].List)))), nil
		case ValPath:
			return ScalarVal(graph.Int(int64(args[0].Path.Len()))), nil
		case ValScalar:
			if args[0].Scalar.Kind() == graph.KindString {
				return ScalarVal(graph.Int(int64(len(args[0].Scalar.AsString())))), nil
			}
		case ValNull:
			return nullVal, nil
		}
		return nullVal, ex.errf("%s() of a %s", t.Name, kindName(args[0].Kind))
	case "nodes":
		if len(args) == 1 && args[0].Kind == ValPath {
			ns := args[0].Path.Nodes()
			out := make([]Val, len(ns))
			for i, n := range ns {
				out[i] = NodeVal(n)
			}
			return ListVal(out), nil
		}
		if len(args) == 1 && args[0].IsNull() {
			return nullVal, nil
		}
		return nullVal, ex.errf("nodes() takes a path")
	case "relationships", "rels":
		if len(args) == 1 && args[0].Kind == ValPath {
			out := make([]Val, len(args[0].Path.Steps))
			for i, s := range args[0].Path.Steps {
				out[i] = EdgeVal(s.Edge)
			}
			return ListVal(out), nil
		}
		if len(args) == 1 && args[0].IsNull() {
			return nullVal, nil
		}
		return nullVal, ex.errf("%s() takes a path", t.Name)
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return nullVal, nil
	case "head":
		if len(args) == 1 && args[0].Kind == ValList && len(args[0].List) > 0 {
			return args[0].List[0], nil
		}
		return nullVal, nil
	case "last":
		if len(args) == 1 && args[0].Kind == ValList && len(args[0].List) > 0 {
			return args[0].List[len(args[0].List)-1], nil
		}
		return nullVal, nil
	case "tolower", "lower":
		if len(args) == 1 && args[0].Kind == ValScalar {
			return ScalarVal(graph.Str(strings.ToLower(args[0].Scalar.AsString()))), nil
		}
		return nullVal, nil
	case "toupper", "upper":
		if len(args) == 1 && args[0].Kind == ValScalar {
			return ScalarVal(graph.Str(strings.ToUpper(args[0].Scalar.AsString()))), nil
		}
		return nullVal, nil
	case "str":
		if len(args) == 1 {
			return ScalarVal(graph.Str(args[0].Format(ex.src))), nil
		}
		return nullVal, nil
	case "startnode":
		if len(args) == 1 && args[0].Kind == ValEdge {
			f, _, _ := ex.src.EdgeEnds(args[0].Edge)
			return NodeVal(f), nil
		}
		return nullVal, nil
	case "endnode":
		if len(args) == 1 && args[0].Kind == ValEdge {
			_, to, _ := ex.src.EdgeEnds(args[0].Edge)
			return NodeVal(to), nil
		}
		return nullVal, nil
	}
	return nullVal, ex.errf("unknown function %s()", t.Name)
}

// evalAggregate folds an aggregate expression over a group of rows.
func (ex *exec) evalAggregate(e Expr, rows []Row) (Val, error) {
	call, ok := e.(*CallExpr)
	if ok && !isAggregateName(call.Name) {
		// A scalar function over aggregate arguments, e.g.
		// length(collect(m)): fold the arguments first.
		args := make([]Expr, len(call.Args))
		tmp := Row{}
		for i, a := range call.Args {
			v, err := ex.evalAggOrScalar(a, rows)
			if err != nil {
				return nullVal, err
			}
			name := fmt.Sprintf("__a%d", i)
			tmp[name] = v
			args[i] = &VarExpr{Name: name}
		}
		return ex.evalCall(&CallExpr{Name: call.Name, Args: args}, tmp)
	}
	if !ok {
		// Arithmetic over aggregates, e.g. count(*)+1: evaluate
		// recursively with aggregate leaves folded first.
		switch t := e.(type) {
		case *BinaryExpr:
			l, err := ex.evalAggOrScalar(t.L, rows)
			if err != nil {
				return nullVal, err
			}
			r, err := ex.evalAggOrScalar(t.R, rows)
			if err != nil {
				return nullVal, err
			}
			tmp := Row{"__l": l, "__r": r}
			return ex.evalBinary(&BinaryExpr{Op: t.Op, L: &VarExpr{Name: "__l"}, R: &VarExpr{Name: "__r"}}, tmp)
		case *UnaryExpr:
			x, err := ex.evalAggOrScalar(t.X, rows)
			if err != nil {
				return nullVal, err
			}
			tmp := Row{"__x": x}
			return ex.evalExpr(&UnaryExpr{Op: t.Op, X: &VarExpr{Name: "__x"}}, tmp)
		}
		return nullVal, ex.errf("unsupported aggregate expression %q", e.Text())
	}

	if call.Name == "count" && call.Star {
		return ScalarVal(graph.Int(int64(len(rows)))), nil
	}
	if len(call.Args) != 1 {
		return nullVal, ex.errf("%s() takes one argument", call.Name)
	}

	var vals []Val
	seen := make(map[string]bool)
	for _, row := range rows {
		v, err := ex.evalExpr(call.Args[0], row)
		if err != nil {
			return nullVal, err
		}
		if v.IsNull() {
			continue // aggregates skip nulls
		}
		if call.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch call.Name {
	case "count":
		return ScalarVal(graph.Int(int64(len(vals)))), nil
	case "collect":
		return ListVal(vals), nil
	case "sum", "avg":
		var total int64
		for _, v := range vals {
			if v.Kind != ValScalar || v.Scalar.Kind() != graph.KindInt {
				return nullVal, ex.errf("%s() over non-integers", call.Name)
			}
			total += v.Scalar.AsInt()
		}
		if call.Name == "sum" {
			return ScalarVal(graph.Int(total)), nil
		}
		if len(vals) == 0 {
			return nullVal, nil
		}
		return ScalarVal(graph.Int(total / int64(len(vals)))), nil
	case "min", "max":
		if len(vals) == 0 {
			return nullVal, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if v.Kind != ValScalar || best.Kind != ValScalar {
				continue
			}
			c, ok := v.Scalar.Compare(best.Scalar)
			if !ok {
				continue
			}
			if (call.Name == "min" && c < 0) || (call.Name == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return nullVal, ex.errf("unknown aggregate %s()", call.Name)
}

func (ex *exec) evalAggOrScalar(e Expr, rows []Row) (Val, error) {
	if isAggregate(e) {
		return ex.evalAggregate(e, rows)
	}
	if len(rows) == 0 {
		return nullVal, nil
	}
	return ex.evalExpr(e, rows[0])
}

func (ex *exec) errf(format string, args ...any) error {
	return fmt.Errorf("cypher: %s", fmt.Sprintf(format, args...))
}

// unknownVarError marks references to unbound variables; ORDER BY treats
// these as null (so keys can reference projected columns only), while
// every other context reports them.
type unknownVarError struct{ name string }

func (e *unknownVarError) Error() string {
	return fmt.Sprintf("cypher: unknown variable %q", e.name)
}
