package query

import (
	"strings"

	"frappe/internal/graph"
)

// Format renders the result as an aligned text table, resolving node and
// edge references against src for display.
func (r *Result) Format(src graph.Source) string {
	if len(r.Columns) == 0 {
		return "(no columns)\n"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.Format(src)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(items []string) {
		sb.WriteString("| ")
		for j, s := range items {
			sb.WriteString(s)
			sb.WriteString(strings.Repeat(" ", widths[j]-len(s)))
			sb.WriteString(" | ")
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	sb.WriteString("|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteString("|")
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// Count returns the number of result rows, the quantity the paper reports
// as "Result Count" in Table 5.
func (r *Result) Count() int { return len(r.Rows) }

// Column returns the index of a named column, or -1.
func (r *Result) Column(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// NodeIDs extracts the node IDs of one column; non-node values are
// skipped.
func (r *Result) NodeIDs(col int) []graph.NodeID {
	var out []graph.NodeID
	for _, row := range r.Rows {
		if col >= 0 && col < len(row) && row[col].Kind == ValNode {
			out = append(out, row[col].Node)
		}
	}
	return out
}
