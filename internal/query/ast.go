package query

import "frappe/internal/graph"

// Query is a parsed Cypher query: an ordered list of clauses.
type Query struct {
	Clauses []Clause
	Source  string // original text, for error reporting
}

// Clause is one of StartClause, MatchClause, WhereClause, WithClause,
// ReturnClause.
type Clause interface{ clause() }

// StartClause is Cypher 1.x's START: explicit anchor points.
type StartClause struct {
	Items []StartItem
}

// StartItem binds one variable to index results, explicit IDs, or all
// nodes.
type StartItem struct {
	Var        string
	IndexName  string // e.g. node_auto_index; empty for ID/all forms
	IndexQuery string // the Lucene query string
	IDs        []graph.NodeID
	All        bool
}

// MatchClause matches one or more comma-separated patterns. Optional
// marks OPTIONAL MATCH (unmatched rows survive with nulls).
type MatchClause struct {
	Patterns []*Pattern
	Optional bool
}

// WhereClause filters rows. In Cypher a WHERE belongs to the preceding
// MATCH/START/WITH, which is equivalent to filtering at this pipeline
// position for the subset we support.
type WhereClause struct {
	Cond Expr
}

// WithClause projects the row set mid-pipeline.
type WithClause struct {
	Distinct bool
	Items    []ReturnItem
	OrderBy  []OrderKey
	Skip     Expr
	Limit    Expr
}

// ReturnClause produces the query result.
type ReturnClause struct {
	Distinct bool
	Items    []ReturnItem
	OrderBy  []OrderKey
	Skip     Expr
	Limit    Expr
}

// ReturnItem is one projected column.
type ReturnItem struct {
	Expr  Expr
	Alias string // column name; defaults to the expression's text
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func (*StartClause) clause()  {}
func (*MatchClause) clause()  {}
func (*WhereClause) clause()  {}
func (*WithClause) clause()   {}
func (*ReturnClause) clause() {}

// Pattern is a linear node-rel-node-... chain, optionally bound to a
// path variable and optionally wrapped in shortestPath(...).
type Pattern struct {
	Nodes []*NodePattern // len(Nodes) == len(Rels)+1
	Rels  []*RelPattern
	// PathVar binds the matched path (MATCH p = ...).
	PathVar string
	// Shortest marks shortestPath(...): both endpoints must be bound and
	// the single relationship pattern is searched breadth-first.
	Shortest bool
	// AllShortest marks allShortestPaths(...): every minimum-length path.
	AllShortest bool
}

// NodePattern matches a node: optional variable, labels, property map.
// A bare identifier (Cypher 1.x style, e.g. `m -[:x]-> f`) parses as a
// NodePattern with only Var set.
type NodePattern struct {
	Var    string
	Labels []string
	Props  []PropMatch
}

// RelPattern matches a relationship (or a variable-length chain).
type RelPattern struct {
	Var     string
	Types   []string // empty = any type
	Props   []PropMatch
	ToRight bool // -[]->
	ToLeft  bool // <-[]- ; both false = undirected
	VarLen  bool
	MinHops int // valid when VarLen; default 1
	MaxHops int // 0 = unbounded
}

// PropMatch is one key: literal entry of a {..} map in a pattern.
type PropMatch struct {
	Key string
	Val graph.Value
}

// Expr is an expression tree node.
type Expr interface {
	exprNode()
	// Text reproduces a display form used for default column names.
	Text() string
}

// LiteralExpr is a constant.
type LiteralExpr struct {
	Val  graph.Value
	Null bool // the NULL literal
}

// VarExpr references a bound variable.
type VarExpr struct{ Name string }

// PropExpr accesses a property of a node/edge expression: base.key.
type PropExpr struct {
	Base Expr
	Key  string
}

// BinaryExpr applies an operator.
type BinaryExpr struct {
	Op    string // "AND" "OR" "XOR" "=" "<>" "<" "<=" ">" ">=" "+" "-" "*" "/" "%" "=~"
	L, R  Expr
	OpPos int
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" "-"
	X  Expr
}

// CallExpr is a function call, possibly aggregating.
type CallExpr struct {
	Name     string // lower-cased
	Distinct bool   // count(DISTINCT x)
	Star     bool   // count(*)
	Args     []Expr
}

// PatternExpr is a pattern used as a predicate (Figure 4/5 of the paper).
type PatternExpr struct{ Pattern *Pattern }

// HasExpr is has(n.prop) / exists(n.prop): property presence.
type HasExpr struct {
	Base Expr
	Key  string
}

func (*LiteralExpr) exprNode() {}
func (*VarExpr) exprNode()     {}
func (*PropExpr) exprNode()    {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*PatternExpr) exprNode() {}
func (*HasExpr) exprNode()     {}

// Text implementations give stable display names for columns.
func (e *LiteralExpr) Text() string {
	if e.Null {
		return "NULL"
	}
	if e.Val.Kind() == graph.KindString {
		return "\"" + e.Val.AsString() + "\""
	}
	return e.Val.String()
}
func (e *VarExpr) Text() string  { return e.Name }
func (e *PropExpr) Text() string { return e.Base.Text() + "." + e.Key }
func (e *BinaryExpr) Text() string {
	return e.L.Text() + " " + e.Op + " " + e.R.Text()
}
func (e *UnaryExpr) Text() string { return e.Op + " " + e.X.Text() }
func (e *CallExpr) Text() string {
	s := e.Name + "("
	if e.Distinct {
		s += "distinct "
	}
	if e.Star {
		s += "*"
	}
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.Text()
	}
	return s + ")"
}
func (e *PatternExpr) Text() string { return "<pattern>" }
func (e *HasExpr) Text() string     { return "has(" + e.Base.Text() + "." + e.Key + ")" }

// isAggregate reports whether the expression contains an aggregating call.
func isAggregate(e Expr) bool {
	switch t := e.(type) {
	case *CallExpr:
		switch t.Name {
		case "count", "sum", "min", "max", "avg", "collect":
			return true
		}
		for _, a := range t.Args {
			if isAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return isAggregate(t.L) || isAggregate(t.R)
	case *UnaryExpr:
		return isAggregate(t.X)
	case *PropExpr:
		return isAggregate(t.Base)
	}
	return false
}
