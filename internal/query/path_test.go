package query

import (
	"context"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/model"
)

// pathFixture: a -> b -> d, a -> c -> d, a -> d (reads), plus d -> e.
func pathFixture() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	ids := map[string]graph.NodeID{}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		ids[n] = g.AddNode(model.NodeFunction, graph.P(model.PropShortName, n))
	}
	g.AddEdge(ids["a"], ids["b"], model.EdgeCalls, nil)
	g.AddEdge(ids["b"], ids["d"], model.EdgeCalls, nil)
	g.AddEdge(ids["a"], ids["c"], model.EdgeCalls, nil)
	g.AddEdge(ids["c"], ids["d"], model.EdgeCalls, nil)
	g.AddEdge(ids["a"], ids["d"], model.EdgeReads, nil)
	g.AddEdge(ids["d"], ids["e"], model.EdgeCalls, nil)
	return g, ids
}

func TestShortestPathQuery(t *testing.T) {
	g, ids := pathFixture()
	res := run(t, g, `
START a=node:node_auto_index('short_name: a'), e=node:node_auto_index('short_name: e')
MATCH p = shortestPath(a -[:calls*]-> e)
RETURN length(p), nodes(p), relationships(p)`)
	if res.Count() != 1 {
		t.Fatalf("rows = %d", res.Count())
	}
	row := res.Rows[0]
	if row[0].Scalar.AsInt() != 3 {
		t.Fatalf("length = %v", row[0])
	}
	ns := row[1].List
	if len(ns) != 4 || ns[0].Node != ids["a"] || ns[3].Node != ids["e"] {
		t.Fatalf("nodes = %v", ns)
	}
	if len(row[2].List) != 3 {
		t.Fatalf("relationships = %v", row[2])
	}
}

func TestShortestPathRespectsTypes(t *testing.T) {
	g, _ := pathFixture()
	// Any type: a -reads-> d is 1 hop; calls-only is 2.
	res := run(t, g, `
START a=node:node_auto_index('short_name: a'), d=node:node_auto_index('short_name: d')
MATCH p = shortestPath(a -[*]-> d)
RETURN length(p)`)
	if res.Rows[0][0].Scalar.AsInt() != 1 {
		t.Fatalf("untyped length = %v", res.Rows[0][0])
	}
	res = run(t, g, `
START a=node:node_auto_index('short_name: a'), d=node:node_auto_index('short_name: d')
MATCH p = shortestPath(a -[:calls*]-> d)
RETURN length(p)`)
	if res.Rows[0][0].Scalar.AsInt() != 2 {
		t.Fatalf("calls length = %v", res.Rows[0][0])
	}
}

func TestAllShortestPaths(t *testing.T) {
	g, _ := pathFixture()
	res := run(t, g, `
START a=node:node_auto_index('short_name: a'), d=node:node_auto_index('short_name: d')
MATCH p = allShortestPaths(a -[:calls*]-> d)
RETURN p`)
	// Two 2-hop paths: via b and via c.
	if res.Count() != 2 {
		t.Fatalf("paths = %d", res.Count())
	}
	if res.Rows[0][0].Equal(res.Rows[1][0]) {
		t.Fatal("duplicate shortest paths")
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	g, _ := pathFixture()
	res := run(t, g, `
START e=node:node_auto_index('short_name: e'), a=node:node_auto_index('short_name: a')
MATCH p = shortestPath(e -[:calls*]-> a)
RETURN p`)
	if res.Count() != 0 {
		t.Fatalf("rows = %d, want 0", res.Count())
	}
}

func TestShortestPathLeftArrow(t *testing.T) {
	g, ids := pathFixture()
	// e <-[:calls*]- a means the path runs a -> ... -> e.
	res := run(t, g, `
START e=node:node_auto_index('short_name: e'), a=node:node_auto_index('short_name: a')
MATCH p = shortestPath(e <-[:calls*]- a)
RETURN length(p), nodes(p)`)
	if res.Count() != 1 || res.Rows[0][0].Scalar.AsInt() != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	ns := res.Rows[0][1].List
	if ns[0].Node != ids["a"] {
		t.Fatalf("path should start at a, got %v", ns[0])
	}
}

func TestGeneralPathBinding(t *testing.T) {
	g, ids := pathFixture()
	res := run(t, g, `
START a=node:node_auto_index('short_name: a')
MATCH p = a -[:calls]-> b -[:calls]-> (c{short_name: 'd'})
RETURN p, length(p) ORDER BY length(p)`)
	if res.Count() != 2 {
		t.Fatalf("paths = %d", res.Count())
	}
	for _, row := range res.Rows {
		v := row[0]
		if v.Kind != ValPath || v.Path.Start != ids["a"] || v.Path.End() != ids["d"] || v.Path.Len() != 2 {
			t.Fatalf("path = %+v", v)
		}
	}
}

func TestPathBindingWithVarLength(t *testing.T) {
	g, ids := pathFixture()
	res := run(t, g, `
START a=node:node_auto_index('short_name: a')
MATCH p = a -[:calls*]-> (x{short_name: 'e'})
RETURN p`)
	// Two routes to e (via b and via c), each 3 hops.
	if res.Count() != 2 {
		t.Fatalf("paths = %d", res.Count())
	}
	for _, row := range res.Rows {
		if row[0].Path.End() != ids["e"] || row[0].Path.Len() != 3 {
			t.Fatalf("path = %+v", row[0].Path)
		}
	}
}

func TestShortestPathErrors(t *testing.T) {
	g, _ := pathFixture()
	for _, q := range []string{
		// Unbound endpoint.
		`MATCH p = shortestPath((a) -[:calls*]-> (b{short_name:'d'})) RETURN p`,
		// Two relationships inside shortestPath.
		`START a=node:node_auto_index('short_name: a'), d=node:node_auto_index('short_name: d')
		 MATCH p = shortestPath(a -[:calls]-> x -[:calls]-> d) RETURN p`,
	} {
		if _, err := Run(ctxBackground(), g, q); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestPathFormatting(t *testing.T) {
	g, _ := pathFixture()
	res := run(t, g, `
START a=node:node_auto_index('short_name: a'), e=node:node_auto_index('short_name: e')
MATCH p = shortestPath(a -[:calls*]-> e)
RETURN p`)
	out := res.Format(g)
	if !contains(out, "-[:calls]->") {
		t.Fatalf("formatted = %q", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func ctxBackground() context.Context { return context.Background() }
