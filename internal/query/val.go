package query

import (
	"fmt"
	"strings"

	"frappe/internal/graph"
	"frappe/internal/traversal"
)

// ValKind discriminates runtime values flowing through a query.
type ValKind int

// Runtime value kinds.
const (
	ValNull ValKind = iota
	ValScalar
	ValNode
	ValEdge
	ValList
	ValPath
)

// Val is a runtime value: null, a scalar property value, a node
// reference, an edge reference, a list (from variable-length
// relationship bindings and collect()), or a path (from path bindings
// and shortestPath()).
type Val struct {
	Kind   ValKind
	Node   graph.NodeID
	Edge   graph.EdgeID
	Scalar graph.Value
	List   []Val
	Path   traversal.Path
}

// PathVal wraps a path.
func PathVal(p traversal.Path) Val { return Val{Kind: ValPath, Path: p} }

// Null value singleton.
var nullVal = Val{Kind: ValNull}

// NodeVal wraps a node reference.
func NodeVal(id graph.NodeID) Val { return Val{Kind: ValNode, Node: id} }

// EdgeVal wraps an edge reference.
func EdgeVal(id graph.EdgeID) Val { return Val{Kind: ValEdge, Edge: id} }

// ScalarVal wraps a property value.
func ScalarVal(v graph.Value) Val {
	if v.IsNil() {
		return nullVal
	}
	return Val{Kind: ValScalar, Scalar: v}
}

// ListVal wraps a list.
func ListVal(vs []Val) Val { return Val{Kind: ValList, List: vs} }

// IsNull reports whether the value is null.
func (v Val) IsNull() bool { return v.Kind == ValNull }

// Truthy reports the boolean interpretation (null is false).
func (v Val) Truthy() bool {
	switch v.Kind {
	case ValScalar:
		return v.Scalar.AsBool()
	case ValNode, ValEdge:
		return true
	case ValList:
		return len(v.List) > 0
	case ValPath:
		return true
	}
	return false
}

// Equal compares two runtime values; null equals nothing (Cypher's null
// equality is null, which filters as false).
func (v Val) Equal(o Val) bool {
	if v.Kind == ValNull || o.Kind == ValNull {
		return false
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case ValScalar:
		return v.Scalar.Equal(o.Scalar)
	case ValNode:
		return v.Node == o.Node
	case ValEdge:
		return v.Edge == o.Edge
	case ValList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	case ValPath:
		if v.Path.Start != o.Path.Start || len(v.Path.Steps) != len(o.Path.Steps) {
			return false
		}
		for i := range v.Path.Steps {
			if v.Path.Steps[i] != o.Path.Steps[i] {
				return false
			}
		}
		return true
	}
	return false
}

// key renders a canonical string for DISTINCT / grouping.
func (v Val) key(sb *strings.Builder) {
	switch v.Kind {
	case ValNull:
		sb.WriteString("~")
	case ValNode:
		fmt.Fprintf(sb, "N%d", v.Node)
	case ValEdge:
		fmt.Fprintf(sb, "E%d", v.Edge)
	case ValScalar:
		switch v.Scalar.Kind() {
		case graph.KindInt:
			fmt.Fprintf(sb, "I%d", v.Scalar.AsInt())
		case graph.KindBool:
			fmt.Fprintf(sb, "B%v", v.Scalar.AsBool())
		default:
			fmt.Fprintf(sb, "S%q", v.Scalar.AsString())
		}
	case ValList:
		sb.WriteByte('[')
		for _, x := range v.List {
			x.key(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	case ValPath:
		fmt.Fprintf(sb, "P%d", v.Path.Start)
		for _, s := range v.Path.Steps {
			fmt.Fprintf(sb, "-%d>%d", s.Edge, s.Node)
		}
	}
}

// Key returns the canonical grouping key of the value.
func (v Val) Key() string {
	var sb strings.Builder
	v.key(&sb)
	return sb.String()
}

// Format renders the value for human display, resolving node/edge names
// against the source.
func (v Val) Format(s graph.Source) string {
	switch v.Kind {
	case ValNull:
		return "<null>"
	case ValScalar:
		if v.Scalar.Kind() == graph.KindString {
			return "\"" + v.Scalar.AsString() + "\""
		}
		return v.Scalar.String()
	case ValNode:
		name := ""
		if nv, ok := s.NodeProp(v.Node, "SHORT_NAME"); ok {
			name = " " + nv.AsString()
		}
		return fmt.Sprintf("(%s%s)[%d]", s.NodeType(v.Node), name, v.Node)
	case ValEdge:
		_, _, t := s.EdgeEnds(v.Edge)
		return fmt.Sprintf("[:%s][%d]", t, v.Edge)
	case ValList:
		parts := make([]string, len(v.List))
		for i, x := range v.List {
			parts[i] = x.Format(s)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case ValPath:
		var sb strings.Builder
		sb.WriteString(NodeVal(v.Path.Start).Format(s))
		for _, st := range v.Path.Steps {
			_, _, t := s.EdgeEnds(st.Edge)
			fmt.Fprintf(&sb, " -[:%s]-> %s", t, NodeVal(st.Node).Format(s))
		}
		return sb.String()
	}
	return "?"
}

// Row is a set of variable bindings.
type Row map[string]Val

func (r Row) clone() Row {
	out := make(Row, len(r)+2)
	for k, v := range r {
		out[k] = v
	}
	return out
}
