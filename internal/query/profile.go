package query

import (
	"context"
	"fmt"
	"strings"

	"frappe/internal/graph"
)

// Profile is the execution trace of one query: one OpProfile per
// pipeline clause, in execution order, mirroring Cypher's PROFILE. The
// paper's cold/warm analysis (Table 5) attributes latency to index
// lookups vs. pattern expansion; DBHits per operator exposes exactly
// that split per query.
type Profile struct {
	Ops    []OpProfile `json:"operators"`
	Steps  int64       `json:"steps"`  // total expansion steps (== sum of dbHits)
	Rows   int64       `json:"rows"`   // result rows produced
	Millis float64     `json:"millis"` // total wall time
	// Plan is the planner's EXPLAIN rendering (anchor choices, closure
	// rewrites, fallbacks). Empty when the naive interpreter ran.
	Plan string `json:"plan,omitempty"`
}

// OpProfile is one operator's cost line.
type OpProfile struct {
	Operator string  `json:"operator"` // Start, Match, OptionalMatch, Filter, With, Return
	Detail   string  `json:"detail"`   // rendered clause, e.g. the pattern shape
	Rows     int64   `json:"rows"`     // rows flowing out of the operator
	DBHits   int64   `json:"dbHits"`   // expansion/index steps charged to it
	Millis   float64 `json:"millis"`   // wall time inside the operator
}

// Format renders the profile as an aligned table, one row per operator,
// for `frappe query -profile`.
func (p *Profile) Format() string {
	head := []string{"Operator", "Rows", "DB Hits", "Millis", "Detail"}
	rows := [][]string{head}
	for _, op := range p.Ops {
		rows = append(rows, []string{
			op.Operator,
			fmt.Sprintf("%d", op.Rows),
			fmt.Sprintf("%d", op.DBHits),
			fmt.Sprintf("%.3f", op.Millis),
			op.Detail,
		})
	}
	widths := make([]int, len(head))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(r)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "\nTotal: %d rows, %d db hits, %.3f ms\n", p.Rows, p.Steps, p.Millis)
	if p.Plan != "" {
		sb.WriteByte('\n')
		sb.WriteString(p.Plan)
		if !strings.HasSuffix(p.Plan, "\n") {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// ExecuteProfileLimits runs a parsed query with per-operator tracing.
// The profile is returned even when the query errors (with the
// operators completed so far), so aborted queries remain diagnosable —
// the paper's Figure 6 blow-up is visible as a Match operator whose
// dbHits hit the step budget.
func ExecuteProfileLimits(ctx context.Context, src graph.Source, q *Query, lim Limits) (*Result, *Profile, error) {
	return executeLimits(ctx, src, q, lim, true)
}

// RunProfile parses and executes a query text with per-operator tracing.
func RunProfile(ctx context.Context, src graph.Source, text string, lim Limits) (*Result, *Profile, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, nil, err
	}
	return ExecuteProfileLimits(ctx, src, q, lim)
}

// --- clause rendering ---

// operatorInfo names a clause and renders its shape for profile output.
func operatorInfo(c Clause) (op, detail string) {
	switch t := c.(type) {
	case *StartClause:
		items := make([]string, len(t.Items))
		for i, it := range t.Items {
			items[i] = startItemText(it)
		}
		return "Start", strings.Join(items, ", ")
	case *MatchClause:
		op = "Match"
		if t.Optional {
			op = "OptionalMatch"
		}
		pats := make([]string, len(t.Patterns))
		for i, p := range t.Patterns {
			pats[i] = patternText(p)
		}
		return op, strings.Join(pats, ", ")
	case *WhereClause:
		return "Filter", t.Cond.Text()
	case *WithClause:
		return "With", projectionText(t.Items, t.Distinct)
	case *ReturnClause:
		return "Return", projectionText(t.Items, t.Distinct)
	}
	return "?", ""
}

func startItemText(it StartItem) string {
	switch {
	case it.All:
		return it.Var + " = node(*)"
	case it.IndexName != "":
		return fmt.Sprintf("%s = %s(%q)", it.Var, it.IndexName, it.IndexQuery)
	default:
		ids := make([]string, len(it.IDs))
		for i, id := range it.IDs {
			ids[i] = fmt.Sprintf("%d", id)
		}
		return fmt.Sprintf("%s = node(%s)", it.Var, strings.Join(ids, ","))
	}
}

func projectionText(items []ReturnItem, distinct bool) string {
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.Expr.Text()
		if it.Alias != "" && it.Alias != cols[i] {
			cols[i] += " AS " + it.Alias
		}
	}
	s := strings.Join(cols, ", ")
	if distinct {
		s = "DISTINCT " + s
	}
	return s
}

func patternText(p *Pattern) string {
	var sb strings.Builder
	if p.PathVar != "" {
		sb.WriteString(p.PathVar)
		sb.WriteString(" = ")
	}
	if p.Shortest {
		sb.WriteString("shortestPath(")
	} else if p.AllShortest {
		sb.WriteString("allShortestPaths(")
	}
	for i, n := range p.Nodes {
		sb.WriteString(nodePatternText(n))
		if i < len(p.Rels) {
			sb.WriteString(relPatternText(p.Rels[i]))
		}
	}
	if p.Shortest || p.AllShortest {
		sb.WriteByte(')')
	}
	return sb.String()
}

func nodePatternText(n *NodePattern) string {
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteString(n.Var)
	for _, l := range n.Labels {
		sb.WriteByte(':')
		sb.WriteString(l)
	}
	writeProps(&sb, n.Props)
	sb.WriteByte(')')
	return sb.String()
}

func relPatternText(r *RelPattern) string {
	var sb strings.Builder
	if r.ToLeft {
		sb.WriteByte('<')
	}
	sb.WriteByte('-')
	body := r.Var
	if len(r.Types) > 0 {
		body += ":" + strings.Join(r.Types, "|")
	}
	if r.VarLen {
		body += "*"
		if r.MinHops != 1 || r.MaxHops != 0 {
			body += fmt.Sprintf("%d..", r.MinHops)
			if r.MaxHops > 0 {
				body += fmt.Sprintf("%d", r.MaxHops)
			}
		}
	}
	var props strings.Builder
	writeProps(&props, r.Props)
	body += props.String()
	if body != "" {
		sb.WriteByte('[')
		sb.WriteString(body)
		sb.WriteByte(']')
	}
	sb.WriteByte('-')
	if r.ToRight {
		sb.WriteByte('>')
	}
	return sb.String()
}

func writeProps(sb *strings.Builder, props []PropMatch) {
	if len(props) == 0 {
		return
	}
	sb.WriteByte('{')
	for i, p := range props {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Key)
		sb.WriteString(": ")
		sb.WriteString(p.Val.String())
	}
	sb.WriteByte('}')
}
