package query

import (
	"strings"
	"testing"

	"frappe/internal/graph"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseFigure3(t *testing.T) {
	q := mustParse(t, `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN n`)
	if len(q.Clauses) != 5 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	st := q.Clauses[0].(*StartClause)
	if st.Items[0].Var != "m" || st.Items[0].IndexQuery != "short_name: wakeup.elf" {
		t.Fatalf("start = %+v", st.Items[0])
	}
	m1 := q.Clauses[1].(*MatchClause)
	rel := m1.Patterns[0].Rels[0]
	if !rel.VarLen || rel.MinHops != 1 || rel.MaxHops != 0 || !rel.ToRight {
		t.Fatalf("rel = %+v", rel)
	}
	if len(rel.Types) != 2 || rel.Types[0] != "compiled_from" || rel.Types[1] != "linked_from" {
		t.Fatalf("types = %v", rel.Types)
	}
	w := q.Clauses[2].(*WithClause)
	if !w.Distinct || len(w.Items) != 1 || w.Items[0].Alias != "f" {
		t.Fatalf("with = %+v", w)
	}
	m2 := q.Clauses[3].(*MatchClause)
	np := m2.Patterns[0].Nodes[1]
	if np.Var != "n" || len(np.Labels) != 1 || np.Labels[0] != "field" {
		t.Fatalf("node pattern = %+v", np)
	}
	if len(np.Props) != 1 || np.Props[0].Key != "short_name" || np.Props[0].Val.AsString() != "id" {
		t.Fatalf("props = %+v", np.Props)
	}
}

func TestParseFigure4PatternPredicate(t *testing.T) {
	q := mustParse(t, `
START n=node:node_auto_index('short_name: id')
WHERE (n) <-[{NAME_FILE_ID: 3, NAME_START_LINE: 104, NAME_START_COL: 16}]- ()
RETURN n`)
	wc := q.Clauses[1].(*WhereClause)
	pe, ok := wc.Cond.(*PatternExpr)
	if !ok {
		t.Fatalf("cond = %T", wc.Cond)
	}
	rel := pe.Pattern.Rels[0]
	if !rel.ToLeft || rel.VarLen {
		t.Fatalf("rel = %+v", rel)
	}
	if len(rel.Props) != 3 || rel.Props[1].Key != "NAME_START_LINE" || rel.Props[1].Val.AsInt() != 104 {
		t.Fatalf("rel props = %+v", rel.Props)
	}
	if pe.Pattern.Nodes[0].Var != "n" || pe.Pattern.Nodes[1].Var != "" {
		t.Fatalf("nodes = %+v %+v", pe.Pattern.Nodes[0], pe.Pattern.Nodes[1])
	}
}

func TestParseFigure5(t *testing.T) {
	q := mustParse(t, `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`)
	if len(q.Clauses) != 6 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	st := q.Clauses[0].(*StartClause)
	if len(st.Items) != 3 || st.Items[2].Var != "b" {
		t.Fatalf("start items = %+v", st.Items)
	}
	m1 := q.Clauses[1].(*MatchClause)
	pat := m1.Patterns[0]
	if len(pat.Nodes) != 3 || len(pat.Rels) != 2 {
		t.Fatalf("pattern shape: %d nodes %d rels", len(pat.Nodes), len(pat.Rels))
	}
	if pat.Rels[0].Var != "write" || !pat.Rels[0].ToRight {
		t.Fatalf("rel0 = %+v", pat.Rels[0])
	}
	if !pat.Rels[1].ToLeft || pat.Rels[1].Types[0] != "contains" {
		t.Fatalf("rel1 = %+v", pat.Rels[1])
	}
	wc := q.Clauses[4].(*WhereClause)
	and, ok := wc.Cond.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %#v", wc.Cond)
	}
	if _, ok := and.L.(*BinaryExpr); !ok {
		t.Fatalf("where left = %T", and.L)
	}
	if _, ok := and.R.(*PatternExpr); !ok {
		t.Fatalf("where right = %T", and.R)
	}
	ret := q.Clauses[5].(*ReturnClause)
	if !ret.Distinct || len(ret.Items) != 2 {
		t.Fatalf("return = %+v", ret)
	}
	if _, ok := ret.Items[1].Expr.(*PropExpr); !ok {
		t.Fatalf("return item 1 = %T", ret.Items[1].Expr)
	}
}

func TestParseFigure6(t *testing.T) {
	q := mustParse(t, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`)
	mc := q.Clauses[1].(*MatchClause)
	rel := mc.Patterns[0].Rels[0]
	if !rel.VarLen || len(rel.Types) != 1 || rel.Types[0] != "calls" {
		t.Fatalf("rel = %+v", rel)
	}
}

func TestParseTable6Cypher2(t *testing.T) {
	q := mustParse(t, `MATCH (n:container:symbol{name: "foo"}) RETURN n`)
	np := q.Clauses[0].(*MatchClause).Patterns[0].Nodes[0]
	if np.Var != "n" || len(np.Labels) != 2 || np.Labels[0] != "container" || np.Labels[1] != "symbol" {
		t.Fatalf("node = %+v", np)
	}
}

func TestParseVarLengthBounds(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
	}{
		{"MATCH a -[*]-> b RETURN a", 1, 0},
		{"MATCH a -[*3]-> b RETURN a", 3, 3},
		{"MATCH a -[*2..5]-> b RETURN a", 2, 5},
		{"MATCH a -[*..4]-> b RETURN a", 1, 4},
		{"MATCH a -[*2..]-> b RETURN a", 2, 0},
		{"MATCH a -[:calls*0..]-> b RETURN a", 0, 0},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		rel := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
		if !rel.VarLen || rel.MinHops != c.min || rel.MaxHops != c.max {
			t.Errorf("%q: rel = %+v, want min=%d max=%d", c.src, rel, c.min, c.max)
		}
	}
}

func TestParseDirections(t *testing.T) {
	q := mustParse(t, "MATCH a --> b, c <-- d, e -- f RETURN a")
	pats := q.Clauses[0].(*MatchClause).Patterns
	if !pats[0].Rels[0].ToRight || pats[0].Rels[0].ToLeft {
		t.Fatalf("--> parsed as %+v", pats[0].Rels[0])
	}
	if !pats[1].Rels[0].ToLeft || pats[1].Rels[0].ToRight {
		t.Fatalf("<-- parsed as %+v", pats[1].Rels[0])
	}
	if pats[2].Rels[0].ToLeft || pats[2].Rels[0].ToRight {
		t.Fatalf("-- parsed as %+v", pats[2].Rels[0])
	}
}

func TestParseOrderSkipLimit(t *testing.T) {
	q := mustParse(t, `MATCH (n:function) RETURN n.short_name AS name ORDER BY name DESC, n.name SKIP 2 LIMIT 10`)
	ret := q.Clauses[1].(*ReturnClause)
	if len(ret.OrderBy) != 2 || !ret.OrderBy[0].Desc || ret.OrderBy[1].Desc {
		t.Fatalf("order = %+v", ret.OrderBy)
	}
	if ret.Skip == nil || ret.Limit == nil {
		t.Fatal("missing skip/limit")
	}
	if ret.Items[0].Alias != "name" {
		t.Fatalf("alias = %q", ret.Items[0].Alias)
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `MATCH (n:function) RETURN count(*), count(distinct n), n.short_name`)
	ret := q.Clauses[1].(*ReturnClause)
	c0 := ret.Items[0].Expr.(*CallExpr)
	if !c0.Star || c0.Name != "count" {
		t.Fatalf("count(*) = %+v", c0)
	}
	c1 := ret.Items[1].Expr.(*CallExpr)
	if !c1.Distinct || len(c1.Args) != 1 {
		t.Fatalf("count(distinct n) = %+v", c1)
	}
	if !isAggregate(ret.Items[0].Expr) || isAggregate(ret.Items[2].Expr) {
		t.Fatal("isAggregate misclassifies")
	}
}

func TestParseSubtractionVsPattern(t *testing.T) {
	// `a.x - b.y` is arithmetic; `a -[:t]-> b` is a pattern.
	q := mustParse(t, "MATCH a --> b WHERE a.x - b.y > 3 RETURN a")
	wc := q.Clauses[1].(*WhereClause)
	cmp := wc.Cond.(*BinaryExpr)
	if cmp.Op != ">" {
		t.Fatalf("op = %q", cmp.Op)
	}
	sub := cmp.L.(*BinaryExpr)
	if sub.Op != "-" {
		t.Fatalf("left = %+v", sub)
	}

	q = mustParse(t, "MATCH a --> b WHERE a -[:calls]-> b RETURN a")
	if _, ok := q.Clauses[1].(*WhereClause).Cond.(*PatternExpr); !ok {
		t.Fatalf("want PatternExpr, got %T", q.Clauses[1].(*WhereClause).Cond)
	}
}

func TestParseStartByIDAndAll(t *testing.T) {
	q := mustParse(t, "START n=node(3, 5) RETURN n")
	item := q.Clauses[0].(*StartClause).Items[0]
	if len(item.IDs) != 2 || item.IDs[0] != 3 || item.IDs[1] != 5 {
		t.Fatalf("ids = %v", item.IDs)
	}
	q = mustParse(t, "START n=node(*) RETURN n")
	if !q.Clauses[0].(*StartClause).Items[0].All {
		t.Fatal("All not set")
	}
}

func TestParseOptionalMatch(t *testing.T) {
	q := mustParse(t, "MATCH (n:function) OPTIONAL MATCH n -[:calls]-> m RETURN n, m")
	mc := q.Clauses[1].(*MatchClause)
	if !mc.Optional {
		t.Fatal("Optional not set")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FOO bar",
		"MATCH RETURN n",
		"MATCH (n RETURN n",
		"MATCH (n) -[:x]- RETURN n",
		"START n=node:idx(unquoted) RETURN n",
		"START n = RETURN n",
		"MATCH (n) RETURN",
		"RETURN n LIMIT",
		"MATCH (n:{x: 1}) RETURN n",
		"MATCH (n) WHERE n. RETURN n",
		"MATCH (n) RETURN n MATCH (m) RETURN m RETURN x", // RETURN not final
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			// The multi-RETURN case fails at execution, not parse.
			if !strings.Contains(src, "MATCH (m)") {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		}
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex(`'a\'b' "c\nd" ident 12 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a'b" || toks[1].text != "c\nd" {
		t.Fatalf("strings = %q %q", toks[0].text, toks[1].text)
	}
	if toks[2].kind != tokIdent || toks[3].kind != tokInt || toks[4].kind != tokFloat {
		t.Fatalf("kinds = %v %v %v", toks[2].kind, toks[3].kind, toks[4].kind)
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lex("MATCH // a comment\n (n) RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 7 { // MATCH ( n ) RETURN n EOF
		t.Fatalf("%d tokens", len(toks))
	}
}

func TestLexerArrowAdjacency(t *testing.T) {
	toks, _ := lex("a < -1")
	// ident, '<', '-', int, EOF — '<' and '-' must not join across space.
	if toks[1].kind != tokLt || toks[2].kind != tokDash {
		t.Fatalf("tokens = %v %v", toks[1], toks[2])
	}
	toks, _ = lex("a<-b")
	if toks[1].kind != tokLArrow {
		t.Fatalf("adjacent <- lexed as %v", toks[1])
	}
}

func TestParseLiteralValues(t *testing.T) {
	q := mustParse(t, `MATCH (n{a: 'x', b: 3, c: true, d: false, e: -7}) RETURN n`)
	props := q.Clauses[0].(*MatchClause).Patterns[0].Nodes[0].Props
	if len(props) != 5 {
		t.Fatalf("props = %+v", props)
	}
	if props[4].Val.AsInt() != -7 {
		t.Fatalf("negative literal = %v", props[4].Val)
	}
	if props[2].Val.Kind() != graph.KindBool || !props[2].Val.AsBool() {
		t.Fatalf("bool literal = %#v", props[2].Val)
	}
}
