package query

import (
	"errors"

	"frappe/internal/obs"
)

// Executor metrics. Everything here is observed once per query
// completion (never per expansion step), so the cost is a handful of
// atomic adds amortised over the whole query — invisible next to even a
// warm index hit.
var (
	mQueries = obs.Default.Counter("frappe_query_total",
		"Queries executed (including failed ones).", nil)
	mQueryErrors = obs.Default.Counter("frappe_query_errors_total",
		"Queries that returned an error (parse errors excluded).", nil)
	mBudgetAborts = obs.Default.Counter("frappe_query_budget_aborts_total",
		"Queries aborted by a row or step budget.", nil)
	mRowsReturned = obs.Default.Counter("frappe_query_rows_returned_total",
		"Result rows returned by successful queries.", nil)
	mStepsTotal = obs.Default.Counter("frappe_query_steps_total",
		"Pattern-expansion steps performed across all queries.", nil)
	mQueryDuration = obs.Default.Histogram("frappe_query_duration_ms",
		"Query wall time in milliseconds.", nil, nil)
)

func recordQueryMetrics(res *Result, err error, millis float64, steps int64) {
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows))
	}
	recordStreamMetrics(rows, err, millis, steps)
}

// recordStreamMetrics is recordQueryMetrics for executions that never
// materialize a Result: the row count is the number of rows emitted to
// the sink.
func recordStreamMetrics(rows int64, err error, millis float64, steps int64) {
	mQueries.Inc()
	mStepsTotal.Add(steps)
	mQueryDuration.Observe(millis)
	if err != nil {
		mQueryErrors.Inc()
		if errors.Is(err, ErrBudgetExceeded) {
			mBudgetAborts.Inc()
		}
		return
	}
	mRowsReturned.Add(rows)
}

// Counters is a point-in-time snapshot of the executor's counters,
// surfaced by GET /api/stats so the console can show budget pressure
// without parsing /metrics.
type Counters struct {
	Queries      int64 `json:"queries"`
	Errors       int64 `json:"errors"`
	BudgetAborts int64 `json:"budgetAborts"`
	RowsReturned int64 `json:"rowsReturned"`
	Steps        int64 `json:"steps"`
}

// CountersSnapshot reads the current executor counters.
func CountersSnapshot() Counters {
	return Counters{
		Queries:      mQueries.Value(),
		Errors:       mQueryErrors.Value(),
		BudgetAborts: mBudgetAborts.Value(),
		RowsReturned: mRowsReturned.Value(),
		Steps:        mStepsTotal.Value(),
	}
}
