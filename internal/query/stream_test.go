package query

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"frappe/internal/graph"
)

// renderRows formats a row sequence so streamed and materialized
// executions can be compared byte for byte, order included.
func renderRows(src graph.Source, rows [][]Val) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for j, v := range row {
			if j > 0 {
				s += "\t"
			}
			s += v.Format(src)
		}
		out[i] = s
	}
	return out
}

// collectStream drains a stream into (columns, rows, steps, err).
func collectStream(t *testing.T, ctx context.Context, st *Stream) ([]string, [][]Val, int64, error) {
	t.Helper()
	cols, err := st.Columns(ctx)
	if err != nil {
		_, steps, werr := st.Wait()
		return nil, nil, steps, werr
	}
	var rows [][]Val
	for row := range st.Rows() {
		rows = append(rows, row)
	}
	_, steps, werr := st.Wait()
	return cols, rows, steps, werr
}

// TestStreamMatchesMaterialized is the satellite-3 equivalence table:
// every query shape — the paper's figures plus SKIP/LIMIT/ORDER
// BY/DISTINCT variants — must produce byte-identical rows in identical
// order through both execution paths, with the same step accounting.
func TestStreamMatchesMaterialized(t *testing.T) {
	f := buildFixture()
	ctx := context.Background()
	cases := []struct {
		name      string
		text      string
		pipelined bool // expected Streamable classification
	}{
		{"figure3", figure3Query, true},
		{"figure5", figure5Query, true},
		{"figure6_distinct_closure", figure6Query, true},
		{"match_scan", `MATCH (n:function) RETURN n.short_name`, true},
		{"skip_limit", `MATCH (n:function) RETURN n.short_name AS s SKIP 2 LIMIT 3`, true},
		{"limit_zero", `MATCH (n:function) RETURN n LIMIT 0`, true},
		{"skip_past_end", `MATCH (n:function) RETURN n SKIP 1000`, true},
		{"distinct_skip_limit", `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m SKIP 1 LIMIT 1`, true},
		{"with_chain", `
MATCH (n:function) -[:calls]-> m
WITH distinct m
MATCH m -[:calls]-> k
RETURN distinct k`, true},
		{"order_by", `MATCH (n:function) RETURN n.short_name AS s ORDER BY s`, false},
		{"order_by_desc_limit", `MATCH (n:function) RETURN n.short_name AS s ORDER BY s DESC LIMIT 2`, false},
		{"aggregate", `MATCH (n:function) -[:calls]-> m RETURN n.short_name, count(*)`, false},
		{"optional_match", `
START n=node:node_auto_index('short_name: never_called_writer')
OPTIONAL MATCH n -[:calls]-> m
RETURN n, m`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := mustParseQ(t, tc.text)
			if got := Streamable(q); got != tc.pipelined {
				t.Fatalf("Streamable = %v, want %v", got, tc.pipelined)
			}
			mat, err := ExecuteLimits(ctx, f.g, q, Limits{})
			if err != nil {
				t.Fatalf("materialized: %v", err)
			}
			st := ExecuteStream(ctx, f.g, q, Limits{}, 3) // tiny depth: exercise backpressure
			cols, rows, steps, werr := collectStream(t, ctx, st)
			if werr != nil {
				t.Fatalf("streamed: %v", werr)
			}
			if st.Pipelined() != tc.pipelined {
				t.Fatalf("Pipelined = %v, want %v", st.Pipelined(), tc.pipelined)
			}
			if len(cols) != len(mat.Columns) {
				t.Fatalf("columns %v vs %v", cols, mat.Columns)
			}
			for i := range cols {
				if cols[i] != mat.Columns[i] {
					t.Fatalf("columns %v vs %v", cols, mat.Columns)
				}
			}
			got, want := renderRows(f.g, rows), renderRows(f.g, mat.Rows)
			if len(got) != len(want) {
				t.Fatalf("row count %d vs %d\nstreamed: %q\nmaterialized: %q", len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d differs:\nstreamed:     %q\nmaterialized: %q", i, got[i], want[i])
				}
			}
			// A satisfied LIMIT stops the streamed pipeline's upstream
			// work early, so its step count may be lower; it must never
			// be higher than the materialized execution's.
			if steps > mat.Steps {
				t.Fatalf("streamed did more work: steps %d vs materialized %d", steps, mat.Steps)
			}
		})
	}
}

// TestStreamBudgetError: a budget abort surfaces through Wait with the
// same sentinel the materialized path returns, after whatever rows had
// already streamed.
func TestStreamBudgetError(t *testing.T) {
	f := buildFixture()
	ctx := context.Background()
	q := mustParseQ(t, `MATCH (n:function) RETURN n`)
	st := ExecuteStream(ctx, f.g, q, Limits{MaxRows: 2}, 0)
	_, _, _, err := collectStream(t, ctx, st)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v is not a *BudgetError", err)
	}
}

// TestStreamCancelStopsProducer: cancelling the context while no one
// consumes must unblock the producer goroutine promptly (it is parked
// on a full channel); Wait must return instead of leaking.
func TestStreamCancelStopsProducer(t *testing.T) {
	f := buildFixture()
	ctx, cancel := context.WithCancel(context.Background())
	q := mustParseQ(t, `MATCH (n:function) RETURN n`)
	st := ExecuteStream(ctx, f.g, q, Limits{}, 1)
	if _, err := st.Columns(ctx); err != nil {
		t.Fatalf("columns: %v", err)
	}
	// Take one row, then walk away and cancel: the producer is blocked
	// mid-send with more rows to go.
	<-st.Rows()
	cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := st.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not stop after cancel: Wait still blocked")
	}
}

// TestStreamPanicRecovery: a panicking source aborts the stream with
// the interpreter's query-aborted error instead of crashing the
// process, matching ExecuteLimits.
func TestStreamPanicRecovery(t *testing.T) {
	f := buildFixture()
	q := mustParseQ(t, `MATCH (n) RETURN n.short_name`)
	st := ExecuteStream(context.Background(), panickySource{f.g}, q, Limits{}, 0)
	_, _, _, err := collectStream(t, context.Background(), st)
	if err == nil || !strings.Contains(err.Error(), "query aborted") {
		t.Fatalf("err = %v, want query-aborted error", err)
	}
}

// TestReplayStream: a cached result replays through the stream surface
// with identical rows and the cached step count.
func TestReplayStream(t *testing.T) {
	f := buildFixture()
	ctx := context.Background()
	q := mustParseQ(t, `MATCH (n:function) RETURN n.short_name AS s ORDER BY s`)
	res, err := ExecuteLimits(ctx, f.g, q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	st := ReplayStream(ctx, res, 0)
	cols, rows, _, werr := collectStream(t, ctx, st)
	if werr != nil {
		t.Fatal(werr)
	}
	if st.Pipelined() {
		t.Fatal("replay must not report pipelined")
	}
	if len(cols) != 1 || cols[0] != "s" {
		t.Fatalf("columns = %v", cols)
	}
	got, want := renderRows(f.g, rows), renderRows(f.g, res.Rows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}
