package query

import (
	"context"
	"strings"
	"time"

	"frappe/internal/graph"
	"frappe/internal/obs/trace"
)

// Streaming execution: the clause pipeline run push-based, one row at a
// time, so a query's result never has to exist in memory all at once.
// The materialized executor (run) applies each clause to the full row
// set before moving to the next; here every source row flows through
// the whole clause chain depth-first and the projected result row is
// handed to a sink the moment it exists. Peak memory is the deepest
// in-flight row plus per-clause streaming state (a DISTINCT seen-set,
// SKIP/LIMIT counters) — independent of how many rows the query
// ultimately produces.
//
// Not every projection can stream: ORDER BY and aggregation need the
// full input before they can emit anything. Streamable reports whether
// a query's shape is fully pipelineable; ExecuteStream transparently
// falls back to materialize-then-replay for the rest, so callers get
// one surface with identical rows either way.

// DefaultStreamDepth is the bounded-channel depth a Stream uses when
// the caller passes depth <= 0. It bounds how far the executor can run
// ahead of a slow consumer.
const DefaultStreamDepth = 64

// RowSink consumes one projected result row, in column order. Returning
// an error aborts the execution (the LIMIT/disconnect path).
type RowSink func(row []Val) error

// errStopStream aborts the pipeline early once a LIMIT is satisfied:
// every upstream row from here on would be dropped anyway.
var errStopStream = &Error{Msg: "stream: limit reached"}

// Streamable reports whether q can run fully pipelined: a single RETURN
// in final position and no projection (WITH or RETURN) that needs its
// whole input before emitting — ORDER BY and aggregates force
// materialization; DISTINCT, SKIP and LIMIT stream with incremental
// state.
func Streamable(q *Query) bool {
	if len(q.Clauses) == 0 {
		return false
	}
	for i, c := range q.Clauses {
		switch t := c.(type) {
		case *ReturnClause:
			if i != len(q.Clauses)-1 {
				return false
			}
			if !streamableProjection(t.Items, t.OrderBy) {
				return false
			}
		case *WithClause:
			if !streamableProjection(t.Items, t.OrderBy) {
				return false
			}
		}
	}
	_, ok := q.Clauses[len(q.Clauses)-1].(*ReturnClause)
	return ok
}

func streamableProjection(items []ReturnItem, order []OrderKey) bool {
	if len(order) > 0 {
		return false
	}
	for _, it := range items {
		if isAggregate(it.Expr) {
			return false
		}
	}
	return true
}

// ExecuteStreamFunc runs q fully pipelined under resource budgets,
// announcing the output columns once via onCols and pushing every
// projected row into sink as it is produced. hints carries the
// planner's per-MATCH-clause pattern hints (nil = naive); fastPred
// enables the planner's reachability fast path for WHERE pattern
// predicates. Panics are recovered into the returned error exactly like
// ExecuteLimits. The caller must have checked Streamable(q).
func ExecuteStreamFunc(ctx context.Context, src graph.Source, q *Query, lim Limits, hints [][]PatternHint, fastPred bool, onCols func([]string) error, sink RowSink) (steps int64, err error) {
	start := time.Now()
	ex := &exec{src: src, ctx: ctx, limits: lim, fastPred: fastPred}
	sp := trace.FromContext(ctx).Child("query.stream", trace.Bool("pipelined", true))
	var rows int64
	defer func() {
		if r := recover(); r != nil {
			err = AbortError(r)
		}
		millis := float64(time.Since(start)) / float64(time.Millisecond)
		recordStreamMetrics(rows, err, millis, ex.steps)
		steps = ex.steps
		if sp != nil {
			sp.SetAttr(trace.Int("rows", rows), trace.Int("steps", ex.steps))
			if err != nil {
				sp.SetError(err)
			}
			sp.End()
		}
	}()
	err = ex.runStream(q, hints, onCols, func(row []Val) error {
		rows++
		return sink(row)
	})
	return ex.steps, err
}

// projState is one projection clause's streaming state, alive for the
// whole execution: the DISTINCT seen-set and the SKIP/LIMIT counters.
// Its memory is O(distinct keys), never O(input rows).
type projState struct {
	items    []ReturnItem
	cols     []string
	distinct bool
	seen     map[string]bool
	skip     int64
	limit    int64
	hasSkip  bool
	hasLimit bool
	dropped  int64 // rows consumed by SKIP so far
	passed   int64 // rows forwarded downstream so far
}

// apply pushes one row through the projection: evaluate items, dedup,
// skip, limit. pass is false when the row is absorbed; errStopStream
// signals that LIMIT is satisfied and upstream enumeration can stop.
func (st *projState) apply(ex *exec, row Row) (out Row, pass bool, err error) {
	out = make(Row, len(st.items))
	for i, it := range st.items {
		v, err := ex.evalExpr(it.Expr, row)
		if err != nil {
			return nil, false, err
		}
		out[st.cols[i]] = v
	}
	if st.distinct {
		var sb strings.Builder
		for _, c := range st.cols {
			out[c].key(&sb)
			sb.WriteByte('|')
		}
		k := sb.String()
		if st.seen[k] {
			return nil, false, nil
		}
		st.seen[k] = true
	}
	if st.hasSkip && st.dropped < st.skip {
		st.dropped++
		return nil, false, nil
	}
	if st.hasLimit && st.passed >= st.limit {
		return nil, false, errStopStream
	}
	st.passed++
	return out, true, nil
}

// runStream executes the clause chain push-based. Row order, DISTINCT
// first-seen order and SKIP/LIMIT row selection are identical to the
// materialized run(): each clause enumerates in the same order, only
// the buffering between clauses is gone.
func (ex *exec) runStream(q *Query, matchHints [][]PatternHint, onCols func([]string) error, sink RowSink) error {
	n := len(q.Clauses)
	if _, ok := q.Clauses[n-1].(*ReturnClause); !ok {
		return ex.errf("query has no RETURN clause")
	}

	// Static per-clause state: planner hints by clause index, resolved
	// START seeds, projection streaming state. SKIP/LIMIT are evaluated
	// once here, like the materialized path evaluates them once per
	// projection.
	hintsAt := make([][]PatternHint, n)
	startIDs := make([][][]graph.NodeID, n)
	startCounts := make([][]int, n)
	states := make([]*projState, n)
	matchCounts := make([]int, n)
	mi := 0
	buildProj := func(items []ReturnItem, distinct bool, skipE, limitE Expr) (*projState, error) {
		st := &projState{items: items, distinct: distinct}
		st.cols = make([]string, len(items))
		for i, it := range items {
			st.cols[i] = it.Alias
		}
		if distinct {
			st.seen = map[string]bool{}
		}
		if skipE != nil {
			v, err := ex.evalIntConst(skipE)
			if err != nil {
				return nil, err
			}
			st.skip, st.hasSkip = v, true
		}
		if limitE != nil {
			v, err := ex.evalIntConst(limitE)
			if err != nil {
				return nil, err
			}
			st.limit, st.hasLimit = v, true
		}
		return st, nil
	}
	for i, c := range q.Clauses {
		switch t := c.(type) {
		case *StartClause:
			ids := make([][]graph.NodeID, len(t.Items))
			for j, item := range t.Items {
				resolved, err := ex.startItemIDs(item)
				if err != nil {
					return err
				}
				ids[j] = resolved
			}
			startIDs[i] = ids
			startCounts[i] = make([]int, len(t.Items))
		case *MatchClause:
			if mi < len(matchHints) {
				hintsAt[i] = matchHints[mi]
			}
			mi++
		case *WithClause:
			st, err := buildProj(t.Items, t.Distinct, t.Skip, t.Limit)
			if err != nil {
				return err
			}
			states[i] = st
		case *ReturnClause:
			st, err := buildProj(t.Items, t.Distinct, t.Skip, t.Limit)
			if err != nil {
				return err
			}
			states[i] = st
		}
	}
	if err := onCols(states[n-1].cols); err != nil {
		return err
	}

	var feed func(i int, row Row) error
	feed = func(i int, row Row) error {
		switch t := q.Clauses[i].(type) {
		case *StartClause:
			var rec func(row Row, k int) error
			rec = func(row Row, k int) error {
				if k == len(t.Items) {
					return feed(i+1, row)
				}
				for _, id := range startIDs[i][k] {
					startCounts[i][k]++
					if err := ex.checkRows(startCounts[i][k]); err != nil {
						return err
					}
					r := row.clone()
					r[t.Items[k].Var] = NodeVal(id)
					if err := rec(r, k+1); err != nil {
						return err
					}
				}
				return nil
			}
			return rec(row, 0)
		case *MatchClause:
			matched := false
			err := ex.matchPatterns(row, t.Patterns, hintsAt[i], edgeSet{}, func(r Row) error {
				var n int
				if ex.shared != nil {
					// Scattered workers share one per-clause row count, so
					// the fleet aborts at the same budget the single-engine
					// run would.
					n = int(ex.shared.rows[i].Add(1))
				} else {
					matchCounts[i]++
					n = matchCounts[i]
				}
				if err := ex.checkRows(n); err != nil {
					return err
				}
				matched = true
				return feed(i+1, r)
			})
			if err != nil {
				return err
			}
			if !matched && t.Optional {
				return feed(i+1, optionalNullRow(row, t))
			}
			return nil
		case *WhereClause:
			v, err := ex.evalExpr(t.Cond, row)
			if err != nil {
				return err
			}
			if !v.IsNull() && v.Truthy() {
				return feed(i+1, row)
			}
			return nil
		case *WithClause:
			out, pass, err := states[i].apply(ex, row)
			if err != nil || !pass {
				return err
			}
			return feed(i+1, out)
		case *ReturnClause:
			out, pass, err := states[i].apply(ex, row)
			if err != nil || !pass {
				return err
			}
			st := states[i]
			vals := make([]Val, len(st.cols))
			for j, c := range st.cols {
				vals[j] = out[c]
			}
			return sink(vals)
		}
		return nil
	}
	err := feed(0, Row{})
	if err == errStopStream {
		err = nil
	}
	return err
}

// optionalNullRow extends row with nulls for every unbound variable an
// OPTIONAL MATCH would have bound — the same padding applyMatchHints
// does for unmatched rows.
func optionalNullRow(row Row, mc *MatchClause) Row {
	r := row.clone()
	for _, pat := range mc.Patterns {
		for _, np := range pat.Nodes {
			if np.Var != "" {
				if _, ok := r[np.Var]; !ok {
					r[np.Var] = nullVal
				}
			}
		}
		for _, rp := range pat.Rels {
			if rp.Var != "" {
				if _, ok := r[rp.Var]; !ok {
					r[rp.Var] = nullVal
				}
			}
		}
		if pat.PathVar != "" {
			if _, ok := r[pat.PathVar]; !ok {
				r[pat.PathVar] = nullVal
			}
		}
	}
	return r
}

// --- channel-backed consumer handle ---

// Stream is one streamed execution's consumer handle: the output
// columns, a bounded row channel, and the terminal state (row count,
// steps, error) available once the channel closes. The producer never
// outlives the context: cancel it and drain Rows (or call Wait) to
// release the goroutine. Rows received from the channel are in column
// order and must be treated as read-only when the stream replays a
// shared cached result.
type Stream struct {
	rows      chan []Val
	done      chan struct{}
	colsCh    chan struct{}
	cols      []string
	count     int64
	steps     int64
	err       error
	pipelined bool
}

func newStream(depth int, pipelined bool) *Stream {
	if depth <= 0 {
		depth = DefaultStreamDepth
	}
	return &Stream{
		rows:      make(chan []Val, depth),
		done:      make(chan struct{}),
		colsCh:    make(chan struct{}),
		pipelined: pipelined,
	}
}

// run starts the producer goroutine. fn pushes columns through onCols
// exactly once and rows through sink; the sink blocks on the bounded
// channel and aborts when ctx is cancelled, so an abandoned consumer
// that cancels its context always unblocks the producer.
func (s *Stream) run(ctx context.Context, fn func(onCols func([]string) error, sink RowSink) (int64, error)) {
	go func() {
		defer close(s.done)
		defer close(s.rows)
		onCols := func(cols []string) error {
			s.cols = cols
			close(s.colsCh)
			return nil
		}
		sink := func(row []Val) error {
			select {
			case s.rows <- row:
				s.count++
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		s.steps, s.err = fn(onCols, sink)
	}()
}

// Columns blocks until the output columns are known (before the first
// row) or the execution failed before producing them.
func (s *Stream) Columns(ctx context.Context) ([]string, error) {
	select {
	case <-s.colsCh:
		return s.cols, nil
	case <-s.done:
		// Both channels may be ready; prefer the columns if they exist.
		select {
		case <-s.colsCh:
			return s.cols, nil
		default:
		}
		return nil, s.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Rows is the bounded result channel; it closes when execution ends
// (successfully or not — check Wait for the terminal error).
func (s *Stream) Rows() <-chan []Val { return s.rows }

// Wait blocks until the execution finishes and returns how many rows
// were produced into the channel, the step count, and the terminal
// error (nil on success).
func (s *Stream) Wait() (count, steps int64, err error) {
	<-s.done
	return s.count, s.steps, s.err
}

// Pipelined reports whether the stream ran fully pipelined (bounded
// memory) or materialized first and replayed.
func (s *Stream) Pipelined() bool { return s.pipelined }

// ExecuteStream runs q as a streaming execution, yielding projected
// rows through a bounded channel of the given depth (<= 0 means
// DefaultStreamDepth). Fully-pipelineable queries run with bounded
// memory; ORDER BY and aggregation shapes materialize through
// ExecuteLimits and replay their rows, so the rows are identical either
// way. Budgets, ctx cancellation and panic recovery behave exactly as
// in ExecuteLimits; the terminal error is reported by Wait.
func ExecuteStream(ctx context.Context, src graph.Source, q *Query, lim Limits, depth int) *Stream {
	if Streamable(q) {
		return PipelinedStream(ctx, src, q, lim, nil, false, depth)
	}
	return MaterializedStream(ctx, depth, func() (*Result, error) {
		return ExecuteLimits(ctx, src, q, lim)
	})
}

// PipelinedStream is ExecuteStream's bounded-memory path with the
// planner's hints and fast-predicate mode (internal/plan calls it for
// compiled streamable plans). The caller must have checked
// Streamable(q).
func PipelinedStream(ctx context.Context, src graph.Source, q *Query, lim Limits, hints [][]PatternHint, fastPred bool, depth int) *Stream {
	s := newStream(depth, true)
	s.run(ctx, func(onCols func([]string) error, sink RowSink) (int64, error) {
		return ExecuteStreamFunc(ctx, src, q, lim, hints, fastPred, onCols, sink)
	})
	return s
}

// MaterializedStream adapts a materializing execution to the Stream
// surface: run once, then replay columns and rows through the channel.
// Memory is O(result), not O(channel depth) — callers use it for the
// shapes Streamable rejects and for cache replays.
func MaterializedStream(ctx context.Context, depth int, run func() (*Result, error)) *Stream {
	s := newStream(depth, false)
	s.run(ctx, func(onCols func([]string) error, sink RowSink) (int64, error) {
		res, err := run()
		if err != nil {
			return 0, err
		}
		if err := onCols(res.Columns); err != nil {
			return res.Steps, err
		}
		for _, row := range res.Rows {
			if err := sink(row); err != nil {
				return res.Steps, err
			}
		}
		return res.Steps, nil
	})
	return s
}

// ReplayStream streams an already-computed result (a query-cache hit)
// through the Stream surface. The result is shared with the cache:
// consumers must not mutate received rows.
func ReplayStream(ctx context.Context, res *Result, depth int) *Stream {
	return MaterializedStream(ctx, depth, func() (*Result, error) { return res, nil })
}
