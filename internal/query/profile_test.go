package query

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestProfileFigureQueries profiles every paper query family (Figures
// 3-6) and checks the trace's accounting invariants: one operator per
// clause, dbHits sum to the executor's step count, and the final
// operator's rows equal the result's.
func TestProfileFigureQueries(t *testing.T) {
	f := buildFixture()
	for name, text := range map[string]string{
		"figure3": figure3Query,
		"figure4": figure4Query,
		"figure5": figure5Query,
		"figure6": figure6Query,
	} {
		t.Run(name, func(t *testing.T) {
			res, prof, err := RunProfile(context.Background(), f.g, text, Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if prof == nil || len(prof.Ops) == 0 {
				t.Fatal("no profile")
			}
			q, _ := Parse(text)
			if len(prof.Ops) != len(q.Clauses) {
				t.Fatalf("%d operators for %d clauses", len(prof.Ops), len(q.Clauses))
			}
			var hits int64
			for _, op := range prof.Ops {
				hits += op.DBHits
				if op.Operator == "?" || op.Rows < 0 {
					t.Fatalf("bad operator %+v", op)
				}
			}
			if hits != prof.Steps || prof.Steps != res.Steps {
				t.Fatalf("dbHits sum %d, profile steps %d, result steps %d — must agree", hits, prof.Steps, res.Steps)
			}
			last := prof.Ops[len(prof.Ops)-1]
			if last.Operator != "Return" || last.Rows != int64(len(res.Rows)) || prof.Rows != last.Rows {
				t.Fatalf("final operator %+v vs %d result rows", last, len(res.Rows))
			}
		})
	}
}

// TestProfileMatchesUnprofiledResult demands PROFILE changes nothing
// about the answer.
func TestProfileMatchesUnprofiledResult(t *testing.T) {
	f := buildFixture()
	plain, err := Run(context.Background(), f.g, figure5Query)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := RunProfile(context.Background(), f.g, figure5Query, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(plain) != keyOf(prof) {
		t.Fatalf("profiled result differs:\n%s\nvs\n%s", keyOf(plain), keyOf(prof))
	}
	if plain.Steps != prof.Steps {
		t.Fatalf("steps differ: %d vs %d", plain.Steps, prof.Steps)
	}
}

// TestProfileDetailRendering pins the operator naming and clause
// rendering the console and CLI display.
func TestProfileDetailRendering(t *testing.T) {
	f := buildFixture()
	_, prof, err := RunProfile(context.Background(), f.g, figure3Query, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]string, len(prof.Ops))
	for i, op := range prof.Ops {
		ops[i] = op.Operator
	}
	if got, want := strings.Join(ops, ","), "Start,Match,With,Match,Return"; got != want {
		t.Fatalf("operators = %s, want %s", got, want)
	}
	if d := prof.Ops[0].Detail; !strings.Contains(d, `node_auto_index("short_name: wakeup.elf")`) {
		t.Fatalf("Start detail = %q", d)
	}
	if d := prof.Ops[1].Detail; !strings.Contains(d, "compiled_from|linked_from*") {
		t.Fatalf("Match detail = %q", d)
	}
	if d := prof.Ops[3].Detail; !strings.Contains(d, "(n:field{short_name: ") {
		t.Fatalf("second Match detail = %q", d)
	}
}

// TestProfileBudgetAbort shows an aborted query still yields a partial
// trace whose last operator is the one that burned the budget.
func TestProfileBudgetAbort(t *testing.T) {
	f := buildFixture()
	_, prof, err := RunProfile(context.Background(), f.g, figure6Query, Limits{MaxSteps: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget abort", err)
	}
	if prof == nil || len(prof.Ops) == 0 {
		t.Fatal("no partial profile on abort")
	}
	last := prof.Ops[len(prof.Ops)-1]
	if last.Operator != "Match" || last.DBHits == 0 {
		t.Fatalf("aborting operator = %+v", last)
	}
}

// TestProfileFormat sanity-checks the CLI table rendering.
func TestProfileFormat(t *testing.T) {
	f := buildFixture()
	_, prof, err := RunProfile(context.Background(), f.g, figure3Query, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	out := prof.Format()
	for _, want := range []string{"Operator", "DB Hits", "Start", "Return", "Total:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestCountersAdvance checks the executor metrics move with traffic.
func TestCountersAdvance(t *testing.T) {
	f := buildFixture()
	before := CountersSnapshot()
	res, err := Run(context.Background(), f.g, figure3Query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLimits(context.Background(), f.g, figure6Query, Limits{MaxSteps: 2}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected budget abort, got %v", err)
	}
	after := CountersSnapshot()
	if after.Queries < before.Queries+2 {
		t.Fatalf("queries %d -> %d", before.Queries, after.Queries)
	}
	if after.BudgetAborts != before.BudgetAborts+1 {
		t.Fatalf("budget aborts %d -> %d", before.BudgetAborts, after.BudgetAborts)
	}
	if after.RowsReturned < before.RowsReturned+int64(len(res.Rows)) {
		t.Fatalf("rows %d -> %d", before.RowsReturned, after.RowsReturned)
	}
	if after.Steps < before.Steps+res.Steps {
		t.Fatalf("steps %d -> %d", before.Steps, after.Steps)
	}
}
