package query

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"frappe/internal/graph"
	"frappe/internal/store"
)

// TestRowBudget: MaxRows caps materialised result rows with a typed
// ErrBudgetExceeded, failing fast instead of building an oversized
// result set.
func TestRowBudget(t *testing.T) {
	f := buildFixture()
	q := "MATCH (n) RETURN n.short_name"
	rows, err := RunLimits(context.Background(), f.g, q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) < 3 {
		t.Fatalf("fixture too small: %d rows", len(rows.Rows))
	}

	_, err = RunLimits(context.Background(), f.g, q, Limits{MaxRows: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.What != "rows" || be.Limit != 2 {
		t.Fatalf("budget error detail = %+v (err %v)", be, err)
	}

	// A budget at or above the natural result size must not trigger.
	if _, err := RunLimits(context.Background(), f.g, q, Limits{MaxRows: len(rows.Rows)}); err != nil {
		t.Fatalf("budget == result size should pass: %v", err)
	}
}

// TestStepsBudget: MaxSteps caps traversal work for queries whose
// intermediate exploration is large even when the final result is small.
func TestStepsBudget(t *testing.T) {
	f := buildFixture()
	q := "MATCH (a)-->(b) RETURN a.short_name, b.short_name"
	if _, err := RunLimits(context.Background(), f.g, q, Limits{}); err != nil {
		t.Fatal(err)
	}
	_, err := RunLimits(context.Background(), f.g, q, Limits{MaxSteps: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.What != "steps" {
		t.Fatalf("budget error detail = %+v", be)
	}
}

// TestExecuteRecoversCorruptionPanic: the store signals corruption by
// panicking (graph.Source has no error returns); ExecuteLimits must
// convert that into an error that still selects with errors.Is, so the
// HTTP layer can answer 500 instead of crashing the process.
func TestExecuteRecoversCorruptionPanic(t *testing.T) {
	f := buildFixture()
	dir := filepath.Join(t.TempDir(), "db")
	if err := store.Write(dir, f.g); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the node store so record reads fail verification.
	path := filepath.Join(dir, store.NodeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := store.Open(dir)
	if err != nil {
		if errors.Is(err, store.ErrCorrupt) {
			return // caught even earlier — also fine
		}
		t.Fatal(err)
	}
	defer db.Close()

	_, err = RunLimits(context.Background(), db, "MATCH (n) RETURN n.short_name", Limits{})
	if err == nil {
		t.Fatal("query over corrupted store returned no error")
	}
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("recovered error lost its type: %v", err)
	}
}

// TestExecuteRecoversArbitraryPanic: non-error panics (e.g. a slice
// bound bug in an operator) also surface as errors, not crashes.
func TestExecuteRecoversArbitraryPanic(t *testing.T) {
	f := buildFixture()
	_, err := ExecuteLimits(context.Background(), panickySource{f.g}, mustParseQ(t, "MATCH (n) RETURN n.short_name"), Limits{})
	if err == nil {
		t.Fatal("panic was not converted to an error")
	}
}

type panickySource struct {
	*graph.Graph
}

func (panickySource) NodeProp(graph.NodeID, string) (graph.Value, bool) {
	panic("boom: index out of range")
}

func mustParseQ(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}
