package query

import (
	"context"
	"fmt"

	"frappe/internal/graph"
)

// PatternHint carries the planner's per-pattern execution decisions
// into the match machinery. The zero value (Anchor 0 is only consulted
// for unbound patterns, and position 0 is the naive default) means "no
// hint"; the executor validates every field, so a stale or malformed
// hint degrades to naive behaviour instead of wrong answers.
type PatternHint struct {
	// Anchor is the node position to seed an unbound pattern from
	// (cheapest scan/lookup per the cost model). Ignored when any
	// pattern variable is already bound — one seed beats any scan.
	Anchor int
	// LeftFirst expands the jobs left of the anchor before the ones to
	// its right, when the left chain has the smaller estimated fan-out.
	LeftFirst bool
	// Closure marks relationship positions (by index into Pattern.Rels)
	// to execute as a visited-set transitive closure instead of
	// path enumeration. Only legal when the planner proved downstream
	// clauses are multiplicity-invariant; the executor additionally
	// refuses it for patterns that bind the relationship or path.
	Closure []bool
}

// Env is one query run's execution environment: the interpreter's
// clause primitives (START/MATCH/WHERE/projection), step/row budgets,
// and optional PROFILE collection, exposed so the cost-based planner
// (internal/plan) can compile clause pipelines that bypass run()'s
// tree-walk while reusing the exact same operator semantics. An Env is
// single-use and not safe for concurrent use; compiled plans create one
// per execution.
type Env struct{ ex *exec }

// NewEnv builds an execution environment. With profile true, per-op
// traces can be appended to Profile() and Steps()/FinishProfile fill in
// the totals.
func NewEnv(ctx context.Context, src graph.Source, lim Limits, profile bool) *Env {
	ex := &exec{src: src, ctx: ctx, limits: lim}
	if profile {
		ex.prof = &Profile{}
	}
	return &Env{ex: ex}
}

// InitialRows is the unit input of a clause pipeline: one empty row.
func (e *Env) InitialRows() []Row { return []Row{{}} }

// SetFastPredicates enables the visited-set fast path for
// reachability-shaped WHERE pattern predicates (see reachabilityHolds).
// Planned execution turns it on; the naive interpreter never does.
func (e *Env) SetFastPredicates(on bool) { e.ex.fastPred = on }

// Start applies a START clause.
func (e *Env) Start(rows []Row, sc *StartClause) ([]Row, error) {
	return e.ex.applyStart(rows, sc)
}

// Match applies a MATCH clause under the planner's per-pattern hints
// (nil = naive).
func (e *Env) Match(rows []Row, mc *MatchClause, hints []PatternHint) ([]Row, error) {
	return e.ex.applyMatchHints(rows, mc, hints)
}

// Where applies a WHERE clause.
func (e *Env) Where(rows []Row, wc *WhereClause) ([]Row, error) {
	return e.ex.applyWhere(rows, wc)
}

// Project applies a WITH/RETURN projection and returns the projected
// rows plus the output column names.
func (e *Env) Project(rows []Row, items []ReturnItem, distinct bool, order []OrderKey, skip, limit Expr) ([]Row, []string, error) {
	return e.ex.applyProjection(rows, items, distinct, order, skip, limit)
}

// Steps reports the pattern-expansion steps charged so far.
func (e *Env) Steps() int64 { return e.ex.steps }

// Profile returns the in-progress PROFILE trace (nil unless the Env was
// created with profile=true). Callers append OpProfile entries per
// compiled operator.
func (e *Env) Profile() *Profile { return e.ex.prof }

// BuildResult assembles a Result from projected rows in column order
// and stamps the step count, mirroring the interpreter's RETURN
// handling.
func (e *Env) BuildResult(rows []Row, cols []string) *Result {
	res := &Result{Columns: cols, Steps: e.ex.steps}
	for _, r := range rows {
		vals := make([]Val, len(cols))
		for j, c := range cols {
			vals[j] = r[c]
		}
		res.Rows = append(res.Rows, vals)
	}
	return res
}

// AbortError converts a recovered panic value into the interpreter's
// query-aborted error, so compiled execution reports panics identically
// to executeLimits.
func AbortError(r any) error {
	if e, ok := r.(error); ok {
		return fmt.Errorf("cypher: query aborted: %w", e)
	}
	return fmt.Errorf("cypher: query aborted: %v", r)
}

// RecordQueryMetrics feeds one finished execution into the
// frappe_query_* instruments; compiled plans call it from the same
// position executeLimits does.
func RecordQueryMetrics(res *Result, err error, millis float64, steps int64) {
	recordQueryMetrics(res, err, millis, steps)
}

// IsAggregate reports whether an expression contains an aggregate call
// (exported for the planner's multiplicity-invariance analysis).
func IsAggregate(e Expr) bool { return isAggregate(e) }

// OperatorInfo renders a clause as PROFILE's (operator, detail) pair;
// compiled plans reuse it so planned and interpreted traces line up.
func OperatorInfo(c Clause) (op, detail string) { return operatorInfo(c) }

// PatternText renders a pattern the way PROFILE details do (exported
// for EXPLAIN output).
func PatternText(p *Pattern) string { return patternText(p) }

// NodePatternText renders one node pattern (exported for EXPLAIN
// output).
func NodePatternText(n *NodePattern) string { return nodePatternText(n) }
