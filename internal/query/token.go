// Package query implements the Cypher subset Frappé uses as its query
// language: the 1.x START/index syntax and the 2.x label syntax shown in
// the paper's Figures 3-6 and Table 6, with MATCH patterns (including
// variable-length and multi-type relationships and pattern predicates in
// WHERE), WITH pipelines, aggregation, DISTINCT, ORDER BY, SKIP and LIMIT.
//
// The executor evaluates queries over any graph.Source. It retains
// Cypher's variable-length-match semantics — paths are enumerated with
// relationship uniqueness — which is what makes an unbounded transitive
// closure explode combinatorially (the paper's §6.1 finding); callers
// bound that with a context deadline.
package query

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString // quoted
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokSemicolon
	tokDot
	tokDotDot
	tokPipe
	tokStar
	tokPlus
	tokDash   // '-'
	tokSlash  // '/'
	tokPct    // '%'
	tokLArrow // '<-'
	tokRArrow // '->'
	tokEq     // '='
	tokNe     // '<>' or '!='
	tokLt
	tokLe
	tokGt
	tokGe
	tokMatch // '=~'
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of query", tokIdent: "identifier", tokInt: "integer",
	tokFloat: "float", tokString: "string", tokLParen: "'('",
	tokRParen: "')'", tokLBracket: "'['", tokRBracket: "']'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokComma: "','", tokColon: "':'",
	tokSemicolon: "';'", tokDot: "'.'", tokDotDot: "'..'", tokPipe: "'|'",
	tokStar: "'*'", tokPlus: "'+'", tokDash: "'-'", tokSlash: "'/'",
	tokPct: "'%'", tokLArrow: "'<-'", tokRArrow: "'->'", tokEq: "'='",
	tokNe: "'<>'", tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='", tokMatch: "'=~'",
}

type token struct {
	kind tokenKind
	text string // identifier / literal text
	pos  int    // byte offset in the query
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokString || t.kind == tokInt || t.kind == tokFloat {
		return fmt.Sprintf("%s %q", tokenNames[t.kind], t.text)
	}
	return tokenNames[t.kind]
}

// Error is a query parse or execution error with position context.
type Error struct {
	Query string
	Pos   int
	Msg   string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Query); i++ {
		if e.Query[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("cypher: %s (line %d, column %d)", e.Msg, line, col)
}
