package query

import (
	"fmt"
	"strconv"
	"strings"

	"frappe/internal/graph"
)

// Parse parses a Cypher query into its AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &Error{Query: p.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// kw reports whether the current token is the given keyword.
func (p *parser) kw(word string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, word)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(word string) bool {
	if p.kw(word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, p.errf(t.pos, "expected %s, found %s", tokenNames[kind], t)
	}
	return p.next(), nil
}

func (p *parser) expectKw(word string) error {
	if !p.acceptKw(word) {
		return p.errf(p.cur().pos, "expected %s, found %s", strings.ToUpper(word), p.cur())
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Source: p.src}
	for {
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind == tokSemicolon {
			p.next()
			continue
		}
		if t.kind != tokIdent {
			return nil, p.errf(t.pos, "expected a clause keyword, found %s", t)
		}
		var c Clause
		var err error
		switch strings.ToUpper(t.text) {
		case "START":
			c, err = p.parseStart()
		case "MATCH":
			c, err = p.parseMatch(false)
		case "OPTIONAL":
			p.next()
			if !p.kw("MATCH") {
				return nil, p.errf(p.cur().pos, "expected MATCH after OPTIONAL")
			}
			c, err = p.parseMatch(true)
		case "WHERE":
			p.next()
			cond, werr := p.parseExpr()
			if werr != nil {
				return nil, werr
			}
			c = &WhereClause{Cond: cond}
		case "WITH":
			c, err = p.parseProjection(false)
		case "RETURN":
			c, err = p.parseProjection(true)
		default:
			return nil, p.errf(t.pos, "unknown clause %q", t.text)
		}
		if err != nil {
			return nil, err
		}
		q.Clauses = append(q.Clauses, c)
	}
	if len(q.Clauses) == 0 {
		return nil, p.errf(0, "empty query")
	}
	return q, nil
}

// parseStart parses START var=node:index('query')[, ...].
func (p *parser) parseStart() (Clause, error) {
	p.next() // START
	var items []StartItem
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		if err := p.expectKw("node"); err != nil {
			return nil, err
		}
		item := StartItem{Var: v.text}
		switch p.cur().kind {
		case tokColon:
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			item.IndexName = name.text
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			qs, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			item.IndexQuery = qs.text
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		case tokLParen:
			p.next()
			if p.cur().kind == tokStar {
				p.next()
				item.All = true
			} else {
				for {
					id, err := p.expect(tokInt)
					if err != nil {
						return nil, err
					}
					n, _ := strconv.ParseInt(id.text, 10, 64)
					item.IDs = append(item.IDs, graph.NodeID(n))
					if p.cur().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(p.cur().pos, "expected ':' or '(' after node in START")
		}
		items = append(items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	return &StartClause{Items: items}, nil
}

func (p *parser) parseMatch(optional bool) (Clause, error) {
	p.next() // MATCH
	var pats []*Pattern
	for {
		pat, err := p.parseMatchPattern()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	return &MatchClause{Patterns: pats, Optional: optional}, nil
}

// parseMatchPattern parses one MATCH entry: an optional `p =` path
// binding, an optional shortestPath(...) / allShortestPaths(...)
// wrapper, then the pattern chain.
func (p *parser) parseMatchPattern() (*Pattern, error) {
	pathVar := ""
	if p.cur().kind == tokIdent && p.peek().kind == tokEq && !clauseKeyword(p.cur().text) {
		pathVar = p.next().text
		p.next() // '='
	}
	shortest, allShortest := false, false
	if p.kw("shortestPath") || p.kw("allShortestPaths") {
		allShortest = strings.EqualFold(p.cur().text, "allShortestPaths")
		shortest = true
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		pat.PathVar = pathVar
		pat.Shortest = shortest
		pat.AllShortest = allShortest
		if len(pat.Rels) != 1 {
			return nil, p.errf(p.cur().pos, "shortestPath takes a single relationship pattern")
		}
		return pat, nil
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	pat.PathVar = pathVar
	return pat, nil
}

// clauseKeyword reports whether an identifier token starts a new clause.
func clauseKeyword(text string) bool {
	switch strings.ToUpper(text) {
	case "START", "MATCH", "OPTIONAL", "WHERE", "WITH", "RETURN", "ORDER", "SKIP", "LIMIT":
		return true
	}
	return false
}

// parsePattern parses node (rel node)*.
func (p *parser) parsePattern() (*Pattern, error) {
	pat := &Pattern{}
	n, err := p.parseNodePattern()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for {
		k := p.cur().kind
		if k != tokDash && k != tokLArrow {
			break
		}
		rel, err := p.parseRelPattern()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		pat.Rels = append(pat.Rels, rel)
		pat.Nodes = append(pat.Nodes, n)
	}
	return pat, nil
}

func (p *parser) parseNodePattern() (*NodePattern, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if clauseKeyword(t.text) {
			return nil, p.errf(t.pos, "expected a node pattern, found %s", t)
		}
		p.next()
		return &NodePattern{Var: t.text}, nil
	}
	if t.kind != tokLParen {
		return nil, p.errf(t.pos, "expected a node pattern, found %s", t)
	}
	p.next()
	np := &NodePattern{}
	if p.cur().kind == tokIdent {
		np.Var = p.next().text
	}
	for p.cur().kind == tokColon {
		p.next()
		lbl, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		np.Labels = append(np.Labels, lbl.text)
	}
	if p.cur().kind == tokLBrace {
		props, err := p.parsePropMap()
		if err != nil {
			return nil, err
		}
		np.Props = props
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return np, nil
}

// parseRelPattern parses -[...]->, <-[...]-, -[...]-, -->, <--, --.
func (p *parser) parseRelPattern() (*RelPattern, error) {
	rel := &RelPattern{MinHops: 1}
	start := p.cur()
	switch start.kind {
	case tokLArrow:
		rel.ToLeft = true
		p.next()
		if p.cur().kind == tokLBracket {
			if err := p.parseRelDetail(rel); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokDash); err != nil {
			return nil, err
		}
	case tokDash:
		p.next()
		if p.cur().kind == tokLBracket {
			if err := p.parseRelDetail(rel); err != nil {
				return nil, err
			}
		}
		switch p.cur().kind {
		case tokRArrow:
			rel.ToRight = true
			p.next()
		case tokDash:
			p.next() // undirected --
		default:
			return nil, p.errf(p.cur().pos, "expected '->' or '-' to close relationship pattern, found %s", p.cur())
		}
	default:
		return nil, p.errf(start.pos, "expected a relationship pattern, found %s", start)
	}
	return rel, nil
}

func (p *parser) parseRelDetail(rel *RelPattern) error {
	p.next() // [
	if p.cur().kind == tokIdent {
		rel.Var = p.next().text
	}
	if p.cur().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		rel.Types = append(rel.Types, t.text)
		for p.cur().kind == tokPipe {
			p.next()
			if p.cur().kind == tokColon { // |:type form
				p.next()
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			rel.Types = append(rel.Types, t.text)
		}
	}
	if p.cur().kind == tokStar {
		p.next()
		rel.VarLen = true
		rel.MinHops = 1
		rel.MaxHops = 0
		if p.cur().kind == tokInt {
			n, _ := strconv.Atoi(p.next().text)
			rel.MinHops = n
			rel.MaxHops = n // *N means exactly N unless '..' follows
		}
		if p.cur().kind == tokDotDot {
			p.next()
			rel.MaxHops = 0
			if p.cur().kind == tokInt {
				m, _ := strconv.Atoi(p.next().text)
				rel.MaxHops = m
			}
		}
	}
	if p.cur().kind == tokLBrace {
		props, err := p.parsePropMap()
		if err != nil {
			return err
		}
		rel.Props = props
	}
	_, err := p.expect(tokRBracket)
	return err
}

func (p *parser) parsePropMap() ([]PropMatch, error) {
	p.next() // {
	var out []PropMatch
	for {
		if p.cur().kind == tokRBrace {
			break
		}
		key, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		val, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		out = append(out, PropMatch{Key: key.text, Val: val})
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseLiteralValue() (graph.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.next()
		return graph.Str(t.text), nil
	case t.kind == tokInt:
		p.next()
		n, _ := strconv.ParseInt(t.text, 10, 64)
		return graph.Int(n), nil
	case t.kind == tokDash && p.peek().kind == tokInt:
		p.next()
		n, _ := strconv.ParseInt(p.next().text, 10, 64)
		return graph.Int(-n), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.next()
		return graph.Bool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.next()
		return graph.Bool(false), nil
	}
	return graph.Value{}, p.errf(t.pos, "expected a literal value, found %s", t)
}

// parseProjection parses WITH/RETURN bodies.
func (p *parser) parseProjection(isReturn bool) (Clause, error) {
	p.next() // WITH or RETURN
	distinct := p.acceptKw("DISTINCT")
	var items []ReturnItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Expr: e, Alias: e.Text()}
		if p.acceptKw("AS") {
			a, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			item.Alias = a.text
		}
		items = append(items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	var order []OrderKey
	if p.kw("ORDER") {
		p.next()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.acceptKw("DESC") || p.acceptKw("DESCENDING") {
				k.Desc = true
			} else if p.acceptKw("ASC") || p.acceptKw("ASCENDING") {
				k.Desc = false
			}
			order = append(order, k)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	var skip, limit Expr
	if p.acceptKw("SKIP") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		skip = e
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		limit = e
	}
	if isReturn {
		return &ReturnClause{Distinct: distinct, Items: items, OrderBy: order, Skip: skip, Limit: limit}, nil
	}
	return &WithClause{Distinct: distinct, Items: items, OrderBy: order, Skip: skip, Limit: limit}, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		pos := p.next().pos
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r, OpPos: pos}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("XOR") {
		pos := p.next().pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "XOR", L: l, R: r, OpPos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		pos := p.next().pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r, OpPos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.kw("NOT") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokEq:
			op = "="
		case tokNe:
			op = "<>"
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		case tokMatch:
			op = "=~"
		default:
			if p.kw("IN") {
				op = "IN"
			} else {
				return l, nil
			}
		}
		pos := p.next().pos
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, OpPos: pos}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokDash:
			// Disambiguate subtraction from a pattern continuation like
			// `direct -[:calls*]-> writer`: a '[' right after the dash (or
			// a dash/arrow forming -->) means pattern, not arithmetic.
			if k := p.peek().kind; k == tokLBracket || k == tokRArrow || k == tokDash {
				return l, nil
			}
			op = "-"
		default:
			return l, nil
		}
		pos := p.next().pos
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, OpPos: pos}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		case tokPct:
			op = "%"
		default:
			return l, nil
		}
		pos := p.next().pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, OpPos: pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokDash {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokDot {
		p.next()
		key, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		e = &PropExpr{Base: e, Key: key.text}
	}
	return e, nil
}

// patternAhead reports whether the tokens starting at the current
// position look like a pattern rather than an expression. Called with the
// cursor on an identifier or '('.
func (p *parser) patternAhead() bool {
	// Walk past the first node pattern without consuming.
	i := p.pos
	toks := p.toks
	switch toks[i].kind {
	case tokIdent:
		i++
	case tokLParen:
		depth := 0
		for i < len(toks) {
			switch toks[i].kind {
			case tokLParen:
				depth++
			case tokRParen:
				depth--
			case tokEOF:
				return false
			}
			i++
			if depth == 0 {
				break
			}
		}
	default:
		return false
	}
	// A pattern continues with -[, <-, -->, --, or -> (already lexed
	// composites: tokDash tokLBracket / tokLArrow / tokDash tokRArrow /
	// tokDash tokDash).
	switch toks[i].kind {
	case tokLArrow:
		return true
	case tokDash:
		if i+1 < len(toks) {
			switch toks[i+1].kind {
			case tokLBracket, tokRArrow, tokDash:
				return true
			}
		}
	}
	return false
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t.pos, "bad integer %q", t.text)
		}
		return &LiteralExpr{Val: graph.Int(n)}, nil
	case tokFloat:
		// Floats are stored as integers of their truncation; the graph
		// model has no float properties (Table 2), so this only appears in
		// arithmetic, where truncation matches C semantics.
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t.pos, "bad float %q", t.text)
		}
		return &LiteralExpr{Val: graph.Int(int64(f))}, nil
	case tokString:
		p.next()
		return &LiteralExpr{Val: graph.Str(t.text)}, nil
	case tokLParen:
		if p.patternAhead() {
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			return &PatternExpr{Pattern: pat}, nil
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.next()
			return &LiteralExpr{Null: true}, nil
		case "TRUE":
			p.next()
			return &LiteralExpr{Val: graph.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &LiteralExpr{Val: graph.Bool(false)}, nil
		}
		if p.peek().kind == tokLParen && !p.patternAhead() {
			return p.parseCall()
		}
		if p.patternAhead() {
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			return &PatternExpr{Pattern: pat}, nil
		}
		p.next()
		return &VarExpr{Name: t.text}, nil
	}
	return nil, p.errf(t.pos, "expected an expression, found %s", t)
}

func (p *parser) parseCall() (Expr, error) {
	name := p.next() // ident
	p.next()         // (
	call := &CallExpr{Name: strings.ToLower(name.text)}
	if p.cur().kind == tokStar {
		p.next()
		call.Star = true
	} else if p.cur().kind != tokRParen {
		call.Distinct = p.acceptKw("DISTINCT")
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if (call.Name == "has" || call.Name == "exists") && len(call.Args) == 1 {
		if pe, ok := call.Args[0].(*PropExpr); ok {
			return &HasExpr{Base: pe.Base, Key: pe.Key}, nil
		}
	}
	return call, nil
}
