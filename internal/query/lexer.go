package query

import "fmt"

// lex tokenises a query. '<-' and '->' are joined only when the two
// characters are adjacent, so `a < -1` still lexes as a comparison.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		case c == '`': // escaped identifier
			start := i
			i++
			idStart := i
			for i < n && src[i] != '`' {
				i++
			}
			if i >= n {
				return nil, &Error{src, start, "unterminated escaped identifier"}
			}
			toks = append(toks, token{tokIdent, src[idStart:i], start})
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			kind := tokInt
			if i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				kind = tokFloat
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			toks = append(toks, token{kind, src[start:i], start})
		case c == '\'' || c == '"':
			start := i
			i++
			var buf []byte
			for i < n && src[i] != c {
				if src[i] == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						buf = append(buf, '\n')
					case 't':
						buf = append(buf, '\t')
					default:
						buf = append(buf, src[i])
					}
					i++
					continue
				}
				buf = append(buf, src[i])
				i++
			}
			if i >= n {
				return nil, &Error{src, start, "unterminated string literal"}
			}
			i++
			toks = append(toks, token{tokString, string(buf), start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<-":
				toks = append(toks, token{tokLArrow, two, start})
				i += 2
				continue
			case "->":
				toks = append(toks, token{tokRArrow, two, start})
				i += 2
				continue
			case "<>", "!=":
				toks = append(toks, token{tokNe, two, start})
				i += 2
				continue
			case "<=":
				toks = append(toks, token{tokLe, two, start})
				i += 2
				continue
			case ">=":
				toks = append(toks, token{tokGe, two, start})
				i += 2
				continue
			case "=~":
				toks = append(toks, token{tokMatch, two, start})
				i += 2
				continue
			case "..":
				toks = append(toks, token{tokDotDot, two, start})
				i += 2
				continue
			}
			var kind tokenKind
			switch c {
			case '(':
				kind = tokLParen
			case ')':
				kind = tokRParen
			case '[':
				kind = tokLBracket
			case ']':
				kind = tokRBracket
			case '{':
				kind = tokLBrace
			case '}':
				kind = tokRBrace
			case ',':
				kind = tokComma
			case ':':
				kind = tokColon
			case ';':
				kind = tokSemicolon
			case '.':
				kind = tokDot
			case '|':
				kind = tokPipe
			case '*':
				kind = tokStar
			case '+':
				kind = tokPlus
			case '-':
				kind = tokDash
			case '/':
				kind = tokSlash
			case '%':
				kind = tokPct
			case '=':
				kind = tokEq
			case '<':
				kind = tokLt
			case '>':
				kind = tokGt
			default:
				return nil, &Error{src, i, fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, token{kind, src[i : i+1], start})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}
