package coord

import (
	"strconv"
	"sync"

	"frappe/internal/obs"
)

// The frappe_shard_* families: routing decisions, merge volume, hedged
// reads, and the active store's shard topology.
var (
	mQueriesScatter = obs.Default.Counter("frappe_shard_queries_total",
		"Coordinator queries by execution mode.", obs.Labels{"mode": "scatter"})
	mQueriesFastpath = obs.Default.Counter("frappe_shard_queries_total",
		"Coordinator queries by execution mode.", obs.Labels{"mode": "fastpath"})
	mQueriesDirect = obs.Default.Counter("frappe_shard_queries_total",
		"Coordinator queries by execution mode.", obs.Labels{"mode": "direct"})
	mMergeRows = obs.Default.Counter("frappe_shard_merge_rows_total",
		"Rows produced by the scatter-gather merge.", nil)
	mHedgedReads = obs.Default.Counter("frappe_shard_hedged_reads_total",
		"Direct executions that launched a hedge onto a second replica.", nil)
	mHedgeWins = obs.Default.Counter("frappe_shard_hedge_wins_total",
		"Hedged executions where the hedge answered first.", nil)
	mShardCount = obs.Default.Gauge("frappe_shard_count",
		"Shards in the active sharded store.", nil)
	mShardDown = obs.Default.Gauge("frappe_shard_down",
		"Down (unopenable) shards in the active sharded store.", nil)
	mShardEpoch = obs.Default.Gauge("frappe_shard_epoch",
		"Epoch of the active sharded store.", nil)
)

// workerRowsCounter returns the per-shard-labeled worker row counter,
// memoized so the hot path never rebuilds label sets.
var (
	workerRowsMu sync.Mutex
	workerRows   = map[int]*obs.Counter{}
)

func workerRowsCounter(i int) *obs.Counter {
	workerRowsMu.Lock()
	defer workerRowsMu.Unlock()
	if c, ok := workerRows[i]; ok {
		return c
	}
	c := obs.Default.Counter("frappe_shard_worker_rows_total",
		"Rows emitted by scatter workers, by shard.", obs.Labels{"shard": strconv.Itoa(i)})
	workerRows[i] = c
	return c
}
