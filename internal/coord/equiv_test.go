package coord_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"frappe/internal/coord"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/plan"
	"frappe/internal/query"
	"frappe/internal/shard"
	"frappe/internal/store"
)

// The paper's figure queries (same text plan/equiv_test.go checks
// against the naive interpreter; here they prove the sharded
// coordinator equals the single unsharded engine).
const (
	figure3Query = `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`

	figure5Query = `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`

	figure6Query = `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`
)

var (
	tinyOnce sync.Once
	tinyG    *graph.Graph
)

func tinyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	tinyOnce.Do(func() {
		w := kernelgen.Generate(kernelgen.Tiny())
		res, err := w.Extract()
		if err != nil {
			panic(err)
		}
		tinyG = res.Graph
	})
	return tinyG
}

// openCoord persists g as an n-shard store in a temp dir and opens a
// coordinator over it — the full round trip every production query
// takes (Split → atomic Write → Open → scatter/route).
func openCoord(t *testing.T, g *graph.Graph, shards, replicas int, hedge time.Duration) *coord.Coordinator {
	t.Helper()
	dir := t.TempDir()
	if err := shard.Write(dir, shard.Split(g, shards)); err != nil {
		t.Fatalf("shard.Write: %v", err)
	}
	c, err := coord.Open(dir, replicas, store.Options{})
	if err != nil {
		t.Fatalf("coord.Open: %v", err)
	}
	c.Hedge = hedge
	t.Cleanup(func() { c.Close() })
	return c
}

// render formats a result preserving row order: the scatter merge
// reassembles the exact single-engine order, so coordinator results
// must be byte-identical to the unsharded baseline, not merely
// set-equal.
func render(src graph.Source, cols []string, rows [][]query.Val) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(cols, "\t"))
	for _, row := range rows {
		sb.WriteByte('\n')
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Format(src)
		}
		sb.WriteString(strings.Join(cells, "\t"))
	}
	return sb.String()
}

// runEquiv compares the sharded coordinator against a single-engine
// planned execution of the same text: byte-identical rows (materialized
// AND streamed), matching error classes, and — when no LIMIT lets the
// merge truncate early — identical step totals.
func runEquiv(t *testing.T, g *graph.Graph, c *coord.Coordinator, text string, lim query.Limits) {
	t.Helper()
	ctx := context.Background()
	c.Limits = lim

	q, err := query.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	pl := plan.Compile(q, gstats.Collect(g))
	base, berr := pl.Execute(ctx, g, lim)

	got, _, gerr := c.CachedQuery(ctx, text, true)
	if (berr != nil) != (gerr != nil) {
		t.Fatalf("error divergence for %q:\n single: %v\n coord:  %v", text, berr, gerr)
	}
	if berr != nil {
		if errors.Is(berr, query.ErrBudgetExceeded) != errors.Is(gerr, query.ErrBudgetExceeded) {
			t.Fatalf("budget class divergence for %q: single %v, coord %v", text, berr, gerr)
		}
		return
	}
	src := c.Pin().Source()
	want := render(g, base.Columns, base.Rows)
	if have := render(src, got.Columns, got.Rows); have != want {
		t.Fatalf("materialized divergence for %q:\nsingle (%d rows):\n%s\ncoord (%d rows):\n%s",
			text, len(base.Rows), want, len(got.Rows), have)
	}
	hasLimit := strings.Contains(strings.ToUpper(text), "LIMIT")
	if !hasLimit && got.Steps != base.Steps {
		t.Fatalf("step divergence for %q: single %d, coord %d", text, base.Steps, got.Steps)
	}

	st, _, serr := c.StreamQuery(ctx, text, 0)
	if serr != nil {
		t.Fatalf("StreamQuery(%q): %v", text, serr)
	}
	cols, err := st.Columns(ctx)
	if err != nil {
		t.Fatalf("stream columns for %q: %v", text, err)
	}
	var rows [][]query.Val
	for row := range st.Rows() {
		rows = append(rows, row)
	}
	if _, _, err := st.Wait(); err != nil {
		t.Fatalf("stream for %q: %v", text, err)
	}
	if have := render(src, cols, rows); have != want {
		t.Fatalf("streamed divergence for %q:\nsingle:\n%s\nstreamed (%d rows):\n%s", text, want, len(rows), have)
	}
}

// tinyQueries covers every routing mode on the paper-shaped graph:
// START/closure shapes run direct on the composite (cross-shard closure
// over cut edges), indexed anchors take the fast path, unbound scans
// scatter, and LIMIT exercises merge truncation.
var tinyQueries = []struct {
	name string
	text string
}{
	{"figure3", figure3Query},
	{"figure5", figure5Query},
	{"figure6", figure6Query},
	{"figure6bounded", strings.Replace(figure6Query, "-[:calls*]->", "-[:calls*..4]->", 1)},
	{"scatter_scan", `MATCH (n:function) -[:calls]-> m RETURN n.short_name, m.short_name`},
	{"scatter_files", `MATCH (f:file) -[:file_contains]-> (n:function) RETURN f.short_name, n.short_name`},
	{"scatter_where", `MATCH (a:function) -[:calls]-> b WHERE b.short_name = 'pci_conf1_read' RETURN a.short_name`},
	{"scatter_pipeline", `MATCH (f:function{short_name: 'pci_read_bases'}) -[:calls]-> g MATCH g -[:calls]-> h RETURN g.short_name, h.short_name`},
	{"fastpath_reverse", `MATCH (f:function) -[:calls]-> (g:function{short_name: 'pci_conf1_read'}) RETURN f.short_name`},
	{"fastpath_anchor", `MATCH (n:function{short_name: 'pci_read_bases'}) -[:calls]-> m RETURN m.short_name`},
	{"limit", `MATCH (n:function) RETURN n.short_name LIMIT 7`},
	{"limit_scan", `MATCH (n:function) -[:calls]-> m RETURN n.short_name, m.short_name LIMIT 3`},
	{"distinct_direct", `MATCH (n:function) -[:calls]-> m RETURN distinct m.short_name ORDER BY m.short_name`},
}

func TestShardedFigureEquivalence(t *testing.T) {
	g := tinyGraph(t)
	for _, shards := range []int{2, 3, 7} {
		c := openCoord(t, g, shards, 1, 0)
		for _, tc := range tinyQueries {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, tc.name), func(t *testing.T) {
				runEquiv(t, g, c, tc.text, query.Limits{MaxSteps: 10_000_000})
			})
		}
	}
}

// TestReplicatedHedgedEquivalence runs the same table with two replicas
// and an always-firing hedge: replicas serve the same immutable files,
// so hedged direct reads and replica-spread scatter workers must not
// change a byte of output.
func TestReplicatedHedgedEquivalence(t *testing.T) {
	g := tinyGraph(t)
	c := openCoord(t, g, 3, 2, time.Nanosecond)
	if c.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", c.Replicas())
	}
	for _, tc := range tinyQueries {
		t.Run(tc.name, func(t *testing.T) {
			runEquiv(t, g, c, tc.text, query.Limits{MaxSteps: 10_000_000})
		})
	}
}

// TestDiamondClosureAcrossShards is the cross-shard closure proof on a
// worst-case path-multiplicity graph: a 12-diamond chain (2^12 paths,
// 49 nodes) with a back edge, split so consecutive diamonds land on
// different shards — every closure hop crosses a cut edge.
func TestDiamondClosureAcrossShards(t *testing.T) {
	g := graph.New()
	cur := g.AddNode(model.NodeFunction, graph.P(model.PropShortName, "root"))
	for i := 0; i < 12; i++ {
		a := g.AddNode(model.NodeFunction, nil)
		b := g.AddNode(model.NodeFunction, nil)
		join := g.AddNode(model.NodeFunction, nil)
		g.AddEdge(cur, a, model.EdgeCalls, nil)
		g.AddEdge(cur, b, model.EdgeCalls, nil)
		g.AddEdge(a, join, model.EdgeCalls, nil)
		g.AddEdge(b, join, model.EdgeCalls, nil)
		cur = join
	}
	g.AddEdge(cur, graph.NodeID(0), model.EdgeCalls, nil)

	for _, shards := range []int{2, 3, 5} {
		c := openCoord(t, g, shards, 1, 0)
		for i, text := range []string{
			`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*]-> m RETURN distinct m`,
			`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*0..]-> m RETURN distinct m`,
			`START n=node:node_auto_index('short_name: root') MATCH n -[:calls*..3]-> m RETURN count(distinct m)`,
			`START n=node:node_auto_index('short_name: root') MATCH n <-[:calls*]- m RETURN distinct m`,
			`MATCH (n:function) -[:calls]-> m RETURN n.short_name`,
		} {
			t.Run(fmt.Sprintf("shards=%d/q%d", shards, i), func(t *testing.T) {
				runEquiv(t, g, c, text, query.Limits{})
			})
		}
	}
}

// TestRandomizedShardedEquivalence fuzzes mixed scatter/direct shapes
// over seeded random graphs whose call edges freely cross shard
// boundaries (no file structure, so partitioning is pure hash — the
// adversarial case for cut-edge adjacency).
func TestRandomizedShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	const n = 36
	types := []model.NodeType{model.NodeFunction, model.NodeStruct, model.NodeField}
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(types[rng.Intn(len(types))], graph.P(model.PropShortName, fmt.Sprintf("n%02d", i)))
	}
	etypes := []model.EdgeType{model.EdgeCalls, model.EdgeContains}
	for i := 0; i < 48; i++ {
		g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], etypes[rng.Intn(len(etypes))], nil)
	}

	labels := []string{"", ":function", ":struct", ":field"}
	rels := []string{"-[:calls*]->", "<-[:calls*]-", "-[:calls*..2]->", "-[:calls*0..3]->",
		"-[:calls]->", "<-[:contains]-", "-[:calls|contains*..3]->"}
	for _, shards := range []int{3, 5} {
		c := openCoord(t, g, shards, 1, 0)
		for i := 0; i < 60; i++ {
			l1, l2 := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
			rel := rels[rng.Intn(len(rels))]
			var sb strings.Builder
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "START a=node:node_auto_index('short_name: n%02d') MATCH a %s (b%s)", rng.Intn(n), rel, l2)
			} else {
				fmt.Fprintf(&sb, "MATCH (a%s) %s (b%s)", l1, rel, l2)
			}
			switch rng.Intn(3) {
			case 0:
				sb.WriteString(" RETURN distinct b")
			case 1:
				sb.WriteString(" RETURN count(distinct b)")
			case 2:
				sb.WriteString(" RETURN a.short_name, b.short_name")
			}
			text := sb.String()
			t.Run(fmt.Sprintf("shards=%d/r%03d", shards, i), func(t *testing.T) {
				runEquiv(t, g, c, text, query.Limits{MaxSteps: 2_000_000})
			})
		}
	}
}

// TestShardedBudgetParity: the scatter fleet's shared step/row budget
// must abort exactly like the single engine, and cancellation must
// surface as context.Canceled — for both scattered and direct shapes.
func TestShardedBudgetParity(t *testing.T) {
	g := tinyGraph(t)
	c := openCoord(t, g, 3, 1, 0)
	ctx := context.Background()
	for _, text := range []string{
		`MATCH (n:function) -[:calls]-> m RETURN n.short_name, m.short_name`, // scatter
		figure6Query, // direct (closure rewrite)
	} {
		for _, lim := range []query.Limits{{MaxSteps: 1}, {MaxRows: 1}} {
			c.Limits = lim
			if _, _, err := c.CachedQuery(ctx, text, true); !errors.Is(err, query.ErrBudgetExceeded) {
				t.Fatalf("limits %+v on %q: err %v, want budget abort", lim, text, err)
			}
			st, _, err := c.StreamQuery(ctx, text, 0)
			if err != nil {
				t.Fatalf("StreamQuery under %+v: %v", lim, err)
			}
			for range st.Rows() {
			}
			if _, _, err := st.Wait(); !errors.Is(err, query.ErrBudgetExceeded) {
				t.Fatalf("streamed limits %+v on %q: err %v, want budget abort", lim, text, err)
			}
		}

		c.Limits = query.Limits{}
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if _, _, err := c.CachedQuery(cctx, text, true); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ctx on %q: err %v, want context.Canceled", text, err)
		}
	}
}

// TestShardedBudgetMatchesSingleEngine pins the exact abort point: with
// the budget set one step below what the query needs, both engines
// abort; with the exact budget, both succeed. This is only true because
// workers filter non-owned seeds BEFORE ticking and share one counter.
func TestShardedBudgetMatchesSingleEngine(t *testing.T) {
	g := tinyGraph(t)
	c := openCoord(t, g, 3, 1, 0)
	ctx := context.Background()
	text := `MATCH (f:file) -[:file_contains]-> (n:function) RETURN f.short_name, n.short_name`

	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Compile(q, gstats.Collect(g))
	base, err := pl.Execute(ctx, g, query.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	c.Limits = query.Limits{MaxSteps: base.Steps}
	if _, _, err := c.CachedQuery(ctx, text, true); err != nil {
		t.Fatalf("exact budget %d: %v", base.Steps, err)
	}
	c.Limits = query.Limits{MaxSteps: base.Steps - 1}
	if _, _, err := c.CachedQuery(ctx, text, true); !errors.Is(err, query.ErrBudgetExceeded) {
		t.Fatalf("budget %d: err %v, want budget abort", base.Steps-1, err)
	}
}

// TestConcurrentScatter hammers one coordinator from many goroutines:
// the shared-state plumbing (scatter counters, round-robin, merge
// channels) must be race-clean and every answer byte-identical.
func TestConcurrentScatter(t *testing.T) {
	g := tinyGraph(t)
	c := openCoord(t, g, 3, 2, 0)
	c.Limits = query.Limits{}
	ctx := context.Background()
	text := `MATCH (n:function) -[:calls]-> m RETURN n.short_name, m.short_name`
	want, _, err := c.CachedQuery(ctx, text, true)
	if err != nil {
		t.Fatal(err)
	}
	src := c.Pin().Source()
	wantS := render(src, want.Columns, want.Rows)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				res, _, err := c.CachedQuery(ctx, text, true)
				if err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if got := render(src, res.Columns, res.Rows); got != wantS {
					t.Errorf("concurrent divergence (%d rows, want %d)", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEpochVectorUniform: shards commit through one atomic bundle, so
// the pinned epoch vector is uniform and shard-count-shaped.
func TestEpochVectorUniform(t *testing.T) {
	g := tinyGraph(t)
	c := openCoord(t, g, 4, 1, 0)
	c.SetEpoch(9, nil)
	p := c.Pin()
	v := p.EpochVector()
	if len(v) != 4 {
		t.Fatalf("epoch vector length %d, want 4", len(v))
	}
	for i, e := range v {
		if e != 9 {
			t.Fatalf("epoch vector[%d] = %d, want 9", i, e)
		}
	}
	if p.Epoch() != 9 {
		t.Fatalf("Epoch() = %d, want 9", p.Epoch())
	}
}
