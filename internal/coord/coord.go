// Package coord is the scatter-gather coordinator over a sharded store:
// it opens the shard set (plus optional replicas — the store's immutable
// files make replicas free), plans each query once, and picks the
// cheapest correct execution:
//
//   - direct: run the compiled plan straight on the composite source.
//     Used for shapes that cannot scatter (DISTINCT, SKIP, START,
//     shortest-path, interpreter fallbacks — notably every closure
//     rewrite, whose cross-shard correctness therefore rides on the
//     composite's cut-edge adjacency) and for LIMIT queries under a
//     step budget (workers racing past the merge's truncation point
//     could trip a budget the single-engine run never reaches).
//   - fast path: when the planner's seed probe resolves the anchor
//     candidates through the auto-index and they all live on one
//     shard, the query is shard-local — direct execution, no merge.
//   - scatter: one worker per shard, all running the SAME compiled
//     plan over the SAME global-ID composite with the first seed scan
//     partitioned by shard ownership. Workers share one step/row
//     budget, and a k-way merge by ascending anchor reassembles the
//     exact single-engine row order through the bounded-channel
//     streaming surface.
//
// Every request pins one coordinator state — shard set, replicas, and
// the per-shard epoch vector — so a concurrent update swapping the
// store can never make a request mix two epochs.
package coord

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/core"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/plan"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/shard"
	"frappe/internal/store"
)

// state is one immutable published coordinator state. Requests pin a
// state for their whole lifetime; an update builds the next one off to
// the side and publishes it with a single pointer swap.
type state struct {
	replicas []*shard.Set
	epoch    int64
	last     *core.UpdateSummary
}

func (st *state) primary() *shard.Set { return st.replicas[0] }

// Coordinator routes queries across a sharded store. It owns a view
// engine (core.Engine over the composite source) so the non-query
// surfaces — search, go-to-definition, slices, the code map — work
// unchanged, and intercepts the query surfaces to scatter.
type Coordinator struct {
	dir string
	opt store.Options

	// Limits bounds every query exactly like core.Engine.QueryLimits.
	// Set at startup, before the coordinator serves concurrent traffic.
	Limits query.Limits
	// Hedge, when > 0 and at least two replicas are open, starts a
	// second direct execution on another replica if the first has not
	// answered within this delay; the first result wins. Replicas open
	// the same immutable files, so either answer is byte-identical.
	Hedge time.Duration
	// ReadOnly marks a replica-of coordinator: it serves a store
	// directory owned by another process and never applies updates.
	ReadOnly bool

	eng   *core.Engine
	qc    *qcache.Cache
	state atomic.Pointer[state]
	rr    atomic.Uint64

	updateMu sync.Mutex
	mu       sync.Mutex
	retired  []*shard.Set
	closed   bool
}

// Open opens the sharded store at dir with the given replica count
// (clamped to at least 1) and builds the view engine over replica 0.
func Open(dir string, replicas int, opt store.Options) (*Coordinator, error) {
	if replicas < 1 {
		replicas = 1
	}
	c := &Coordinator{dir: dir, opt: opt}
	sets, err := c.openReplicas(replicas)
	if err != nil {
		return nil, err
	}
	c.state.Store(&state{replicas: sets})
	c.eng = core.FromSource(sets[0])
	if st, ok, err := gstats.Load(dir); err == nil && ok {
		c.eng.SeedGraphStats(st)
	}
	mShardCount.Set(int64(sets[0].Shards()))
	mShardDown.Set(int64(len(sets[0].DownShards())))
	return c, nil
}

func (c *Coordinator) openReplicas(n int) ([]*shard.Set, error) {
	sets := make([]*shard.Set, 0, n)
	for i := 0; i < n; i++ {
		s, err := shard.Open(c.dir, c.opt)
		if err != nil {
			for _, prev := range sets {
				prev.Close()
			}
			return nil, fmt.Errorf("coord: opening replica %d: %w", i, err)
		}
		sets = append(sets, s)
	}
	return sets, nil
}

// Engine is the coordinator's view engine over the composite source.
// cmd/frappe hands it to server.New so every non-query endpoint works
// unchanged; its snapshot swaps in lockstep with coordinator updates.
func (c *Coordinator) Engine() *core.Engine { return c.eng }

// SetQueryCache installs the coordinator's own query cache (same
// public cache as the engine's, keyed by the coordinator epoch). Call
// at startup, before concurrent traffic.
func (c *Coordinator) SetQueryCache(qc *qcache.Cache) { c.qc = qc }

// QueryCacheStats reports the coordinator cache's counters (nil when
// no cache is installed).
func (c *Coordinator) QueryCacheStats() *qcache.Stats {
	if c.qc == nil {
		return nil
	}
	s := c.qc.Stats()
	return &s
}

// SetEpoch stamps the live state (used at startup when the opened
// store carries update history). Call before serving traffic.
func (c *Coordinator) SetEpoch(epoch int64, last *core.UpdateSummary) {
	old := c.state.Load()
	c.state.Store(&state{replicas: old.replicas, epoch: epoch, last: last})
	c.eng.SetEpoch(epoch, last)
	mShardEpoch.Set(epoch)
}

// Pinned is one request's pinned coordinator state: every call through
// it sees the same shard set and epoch vector no matter how many
// updates land concurrently.
type Pinned struct {
	c  *Coordinator
	st *state
}

// Pin captures the current state for one request.
func (c *Coordinator) Pin() Pinned { return Pinned{c: c, st: c.state.Load()} }

// Epoch is the pinned store epoch.
func (p Pinned) Epoch() int64 { return p.st.epoch }

// Source is the pinned composite source (for formatting result values).
func (p Pinned) Source() graph.Source { return p.st.primary() }

// EpochVector is the pinned per-shard epoch vector. Shards commit
// through one atomic bundle, so a healthy vector is uniform — the
// vector shape is the API so mixed-epoch states (a future incremental
// per-shard commit) surface visibly instead of silently.
func (p Pinned) EpochVector() []int64 {
	v := make([]int64, p.st.primary().Shards())
	for i := range v {
		v[i] = p.st.epoch
	}
	return v
}

// LastUpdate is the pinned last-update summary.
func (p Pinned) LastUpdate() *core.UpdateSummary { return p.st.last }

// planFor compiles text against the view engine's statistics through
// the coordinator's cache (parse cache + generation-keyed compiled-plan
// slot), mirroring core.Engine.planFor.
func (c *Coordinator) planFor(text string) (*plan.Plan, error) {
	gs := c.eng.GraphStats()
	if c.qc == nil {
		q, err := query.Parse(text)
		if err != nil {
			return nil, err
		}
		return plan.Compile(q, gs), nil
	}
	q, err := c.qc.Plan(text)
	if err != nil {
		return nil, err
	}
	var gen int64
	if gs != nil {
		gen = gs.Generation
	}
	v, err := c.qc.CompiledPlan(text, gen, func() (any, error) {
		return plan.Compile(q, gs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*plan.Plan), nil
}

// execMode is the coordinator's routing decision for one plan.
type execMode int

const (
	modeDirect execMode = iota
	modeFastpath
	modeScatter
)

// routePlan decides how to execute p against the pinned state. The
// comments on each branch are the correctness argument for why the
// cheaper mode is safe there.
func (p Pinned) routePlan(pl *plan.Plan) execMode {
	set := p.st.primary()
	if set.Shards() <= 1 {
		return modeDirect
	}
	// Non-scatterable shapes (including every closure rewrite, which
	// introduces DISTINCT) run once on the composite: the composite IS
	// the whole graph at global IDs, so cross-shard closures are plain
	// visited-set BFS crossing cut edges.
	if pl.Fallback || !query.Scatterable(pl.Query) {
		return modeDirect
	}
	// LIMIT + step budget: scattered workers keep expanding until the
	// merge truncates, so the shared step counter can pass a budget the
	// single-engine run (which stops at the limit) never reaches. Run
	// direct to keep budget-abort behavior identical.
	if _, hasLimit := query.ReturnLimit(pl.Query); hasLimit && p.c.Limits.MaxSteps > 0 {
		return modeDirect
	}
	if ids, ok, err := query.ScatterProbe(set, pl.Query, pl.Hints); ok && err == nil {
		owner := -1
		local := true
		for _, id := range ids {
			o := set.Owner(id)
			if owner == -1 {
				owner = o
			} else if o != owner {
				local = false
				break
			}
		}
		if local {
			// Every anchor candidate lives on one shard (or there are
			// none): the scatter would have exactly one productive
			// worker, so run its plan directly — identical semantics,
			// no merge, no shared counters.
			return modeFastpath
		}
	}
	return modeScatter
}

// pick round-robins across replicas.
func (p Pinned) pick() *shard.Set {
	n := len(p.st.replicas)
	if n == 1 {
		return p.st.replicas[0]
	}
	return p.st.replicas[int(p.c.rr.Add(1))%n]
}

// CachedQuery is the coordinator's materialized query surface,
// mirroring core.Engine.CachedQuery: result reuse keyed by
// (epoch, text, limits), singleflight coalescing, bypass support.
func (p Pinned) CachedQuery(ctx context.Context, text string, bypass bool) (*query.Result, qcache.Outcome, error) {
	qc := p.c.qc
	if qc == nil || bypass {
		res, err := p.execute(ctx, text)
		return res, qcache.Outcome{}, err
	}
	k := qcache.Key{Epoch: p.st.epoch, Text: text, Limits: p.c.Limits}
	return qc.Do(ctx, k, func() (*query.Result, error) {
		return p.execute(ctx, text)
	})
}

func (p Pinned) execute(ctx context.Context, text string) (*query.Result, error) {
	pl, err := p.c.planFor(text)
	if err != nil {
		return nil, err
	}
	switch p.routePlan(pl) {
	case modeScatter:
		mQueriesScatter.Inc()
		return p.scatterExecute(ctx, pl)
	case modeFastpath:
		mQueriesFastpath.Inc()
		return pl.Execute(ctx, p.pick(), p.c.Limits)
	default:
		mQueriesDirect.Inc()
		return p.hedgedExecute(ctx, pl)
	}
}

// hedgedExecute runs the plan directly on a replica, hedging onto a
// second replica when the first is slow. Replicas serve the same
// immutable files, so whichever answers first is correct.
func (p Pinned) hedgedExecute(ctx context.Context, pl *plan.Plan) (*query.Result, error) {
	if len(p.st.replicas) < 2 || p.c.Hedge <= 0 {
		return pl.Execute(ctx, p.pick(), p.c.Limits)
	}
	// Captured here, on the caller's goroutine: the losing replica's
	// goroutine outlives this call and must not touch coordinator fields.
	lim := p.c.Limits
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res    *query.Result
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	run := func(set *shard.Set, hedged bool) {
		go func() {
			res, err := pl.Execute(cctx, set, lim)
			ch <- outcome{res, err, hedged}
		}()
	}
	first := int(p.c.rr.Add(1)) % len(p.st.replicas)
	run(p.st.replicas[first], false)
	outstanding := 1
	timer := time.NewTimer(p.c.Hedge)
	defer timer.Stop()
	hedgeLaunched := false
	var firstErr error
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				if o.hedged {
					mHedgeWins.Inc()
				}
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			outstanding--
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				mHedgedReads.Inc()
				run(p.st.replicas[(first+1)%len(p.st.replicas)], true)
				outstanding++
			}
		}
	}
}

// StreamQuery is the coordinator's streaming surface, mirroring
// core.Engine.StreamQuery: cache hits replay, everything else streams —
// scattered plans through the k-way merge, the rest straight off a
// replica. Parse/compile errors return synchronously for plain 400s.
func (p Pinned) StreamQuery(ctx context.Context, text string, depth int) (*query.Stream, qcache.Outcome, error) {
	if qc := p.c.qc; qc != nil {
		k := qcache.Key{Epoch: p.st.epoch, Text: text, Limits: p.c.Limits}
		if res, ok := qc.Get(k); ok {
			return query.ReplayStream(ctx, res, depth), qcache.Outcome{Hit: true}, nil
		}
	}
	pl, err := p.c.planFor(text)
	if err != nil {
		return nil, qcache.Outcome{}, err
	}
	switch p.routePlan(pl) {
	case modeScatter:
		mQueriesScatter.Inc()
		return query.FuncStream(ctx, depth, true, func(onCols func([]string) error, sink query.RowSink) (int64, error) {
			return p.scatterMerge(ctx, pl, onCols, sink)
		}), qcache.Outcome{}, nil
	case modeFastpath:
		mQueriesFastpath.Inc()
	default:
		mQueriesDirect.Inc()
	}
	return pl.Stream(ctx, p.pick(), p.c.Limits, depth), qcache.Outcome{}, nil
}

// CachedQuery through a fresh pin; see Pinned.CachedQuery.
func (c *Coordinator) CachedQuery(ctx context.Context, text string, bypass bool) (*query.Result, qcache.Outcome, error) {
	return c.Pin().CachedQuery(ctx, text, bypass)
}

// StreamQuery through a fresh pin; see Pinned.StreamQuery.
func (c *Coordinator) StreamQuery(ctx context.Context, text string, depth int) (*query.Stream, qcache.Outcome, error) {
	return c.Pin().StreamQuery(ctx, text, depth)
}

// Update applies one update stop-the-world: fn rebuilds and persists
// the full sharded store (partitioning is cheap next to re-extraction),
// then the coordinator reopens the shard set from disk and publishes
// it. In-flight requests finish on their pinned state; the replaced
// sets retire until Close because pinned requests may still read them.
func (c *Coordinator) Update(fn func(old graph.Source) (*graph.Graph, int64, *core.UpdateSummary, error)) (bool, error) {
	if c.ReadOnly {
		return false, fmt.Errorf("coord: replica-of coordinator is read-only")
	}
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	st := c.state.Load()
	g, epoch, last, err := fn(st.primary())
	if err != nil {
		return false, err
	}
	if g == nil {
		return false, nil
	}
	next, err := c.openReplicas(len(st.replicas))
	if err != nil {
		return false, fmt.Errorf("coord: reopening after update: %w", err)
	}
	c.eng.SwapSource(next[0], epoch, last)
	if gs, ok, err := gstats.Load(c.dir); err == nil && ok {
		c.eng.SeedGraphStats(gs)
	}
	c.state.Store(&state{replicas: next, epoch: epoch, last: last})
	if c.qc != nil {
		c.qc.Invalidate()
	}
	mShardEpoch.Set(epoch)
	mShardCount.Set(int64(next[0].Shards()))
	mShardDown.Set(int64(len(next[0].DownShards())))
	c.mu.Lock()
	c.retired = append(c.retired, st.replicas...)
	c.mu.Unlock()
	return true, nil
}

// Shards is the active shard count.
func (c *Coordinator) Shards() int { return c.state.Load().primary().Shards() }

// Replicas is the open replica count.
func (c *Coordinator) Replicas() int { return len(c.state.Load().replicas) }

// DownShards lists quarantined shard indices (-1 = cut store).
func (c *Coordinator) DownShards() []int { return c.state.Load().primary().DownShards() }

// Degraded reports whether any replica's shard set has down shards or
// quarantined pages.
func (c *Coordinator) Degraded() bool {
	for _, s := range c.state.Load().replicas {
		if s.Degraded() {
			return true
		}
	}
	return false
}

// QuarantinedPages merges quarantined pages across replicas, keyed
// "shard-NNN/<file>".
func (c *Coordinator) QuarantinedPages() map[string][]int64 {
	out := map[string][]int64{}
	for _, s := range c.state.Load().replicas {
		for k, v := range s.QuarantinedPages() {
			if _, seen := out[k]; !seen {
				out[k] = v
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Heal retries quarantined pages on every replica.
func (c *Coordinator) Heal() (healed, remaining int) {
	for _, s := range c.state.Load().replicas {
		h, r := s.Heal()
		healed += h
		remaining += r
	}
	return healed, remaining
}

// Close closes every replica, retired sets included, and the view
// engine. Callers must have drained in-flight requests.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	retired := c.retired
	c.retired = nil
	c.mu.Unlock()
	var first error
	for _, s := range c.state.Load().replicas {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range retired {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := c.eng.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
