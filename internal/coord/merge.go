package coord

import (
	"context"
	"errors"
	"sync"

	"frappe/internal/graph"
	"frappe/internal/obs/trace"
	"frappe/internal/plan"
	"frappe/internal/query"
)

// workerBuf is each scatter worker's bounded output-channel depth. The
// merge consumes one worker at a time, so the others run at most this
// far ahead; total buffered memory is O(shards × workerBuf) rows.
const workerBuf = 64

// mergeItem is one projected row tagged with the seed (anchor node) it
// descends from — the merge key.
type mergeItem struct {
	anchor graph.NodeID
	row    []query.Val
}

// scatterMerge runs one worker per shard over the pinned composite and
// k-way-merges their outputs back into the single-engine row order.
//
// Why the merge reproduces that order exactly: each worker's anchors
// ascend (the seed scan enumerates ascending and the domain filter only
// drops candidates), worker domains are disjoint (so anchors never
// tie), and all rows descending from one anchor are emitted
// contiguously (the pipeline is depth-first per seed). Picking the
// worker with the minimum pending anchor and draining that anchor's
// contiguous run therefore interleaves the per-worker sequences into
// exactly the ascending-anchor order the unsharded seed scan produces.
func (p Pinned) scatterMerge(ctx context.Context, pl *plan.Plan, onCols func([]string) error, sink query.RowSink) (int64, error) {
	set := p.st.primary()
	k := set.Shards()
	shared := query.NewScatterShared(len(pl.Query.Clauses))
	limit, hasLimit := query.ReturnLimit(pl.Query)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chans := make([]chan mergeItem, k)
	errs := make([]error, k)
	steps := make([]int64, k)
	var wg sync.WaitGroup
	// Every worker announces identical columns (same plan); the first
	// announcement wins so the consumer learns the shape even when the
	// result is empty.
	var colsOnce sync.Once
	announce := func(cols []string) error {
		colsOnce.Do(func() { onCols(cols) })
		return nil
	}

	base := int(p.c.rr.Add(1))
	for i := 0; i < k; i++ {
		i := i
		chans[i] = make(chan mergeItem, workerBuf)
		// Workers spread across replicas: with R replicas each serves
		// ~k/R workers' page traffic.
		src := p.st.replicas[(base+i)%len(p.st.replicas)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(chans[i])
			sp := trace.FromContext(ctx).Child("coord.shard", trace.Int("shard", int64(i)))
			wc := wctx
			if sp != nil {
				wc = trace.ContextWith(wctx, sp)
			}
			var rows int64
			domain := func(id graph.NodeID) bool { return set.Owner(id) == i }
			steps[i], errs[i] = query.ExecuteScatterWorker(wc, src, pl.Query, p.c.Limits, pl.Hints, true,
				domain, shared, announce,
				func(anchor graph.NodeID, row []query.Val) error {
					select {
					case chans[i] <- mergeItem{anchor, row}:
						rows++
						return nil
					case <-wc.Done():
						return wc.Err()
					}
				})
			workerRowsCounter(i).Add(rows)
			if sp != nil {
				sp.SetAttr(trace.Int("rows", rows))
				if errs[i] != nil {
					sp.SetError(errs[i])
				}
				sp.End()
			}
		}()
	}

	totalSteps := func() int64 {
		var n int64
		for _, s := range steps {
			n += s
		}
		return n
	}
	// finish tears down the fleet after an early exit (limit reached,
	// consumer gone, worker error): cancel, drain so blocked senders
	// unblock, and wait so errs/steps are final.
	finish := func() {
		cancel()
		for _, ch := range chans {
			for range ch {
			}
		}
		wg.Wait()
	}

	// next refills worker i's pending slot. A closed channel means the
	// worker finished — its error is visible now (close happens after
	// the assignment) and a failure dooms the whole result.
	pending := make([]*mergeItem, k)
	next := func(i int) error {
		if it, ok := <-chans[i]; ok {
			pending[i] = &it
			return nil
		}
		pending[i] = nil
		return errs[i]
	}
	for i := 0; i < k; i++ {
		if err := next(i); err != nil {
			finish()
			return totalSteps(), err
		}
	}

	var produced int64
	for {
		min := -1
		for i, it := range pending {
			if it != nil && (min < 0 || it.anchor < pending[min].anchor) {
				min = i
			}
		}
		if min < 0 {
			break
		}
		a := pending[min].anchor
		for pending[min] != nil && pending[min].anchor == a {
			if err := sink(pending[min].row); err != nil {
				finish()
				return totalSteps(), err
			}
			produced++
			mMergeRows.Inc()
			if hasLimit && produced >= limit {
				// The merge preserves the single-engine order, so the
				// first `limit` merged rows are exactly its LIMIT
				// prefix; the rest of the fleet is wasted work.
				finish()
				return totalSteps(), nil
			}
			if err := next(min); err != nil {
				finish()
				return totalSteps(), err
			}
		}
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		// Prefer the substantive failure over secondary cancellations:
		// once one worker aborts, the shared budget or our cancel makes
		// the others fail with context errors that explain nothing.
		if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(err)) {
			firstErr = err
		}
	}
	if firstErr != nil && isCtxErr(firstErr) && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return totalSteps(), firstErr
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scatterExecute materializes a scattered execution: the same merge,
// collected into a Result. Success-path rows, columns and (without
// LIMIT) step totals are byte-identical to the single-engine Execute.
func (p Pinned) scatterExecute(ctx context.Context, pl *plan.Plan) (*query.Result, error) {
	res := &query.Result{}
	steps, err := p.scatterMerge(ctx, pl,
		func(cols []string) error { res.Columns = cols; return nil },
		func(row []query.Val) error { res.Rows = append(res.Rows, row); return nil })
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	return res, nil
}
