// Package frappe is the public API of Frappé, a source-code querying and
// visualisation system for large C codebases, reproducing "Frappé:
// Querying the Linux Kernel Dependency Graph" (Hawes, Barham, Cifuentes;
// GRADES'15).
//
// The pipeline mirrors the paper's four components:
//
//   - Extractor: a from-scratch C preprocessor + parser + linker model
//     turns a build (compile units + link steps) into a property graph
//     following the paper's Table 1/2 model.
//   - Repository: the graph lives in memory or in Neo4j-style record
//     store files behind an LRU page cache (Save/Open).
//   - Query processor: a Cypher-subset engine (Query) plus an embedded
//     traversal API for the operations Cypher handles poorly.
//   - Interface: use-case operations (Search, GoToDefinition,
//     FindReferences, slices, MacroImpact, CallPath) and a cartographic
//     code map renderer (internal/codemap).
//
// Quick start:
//
//	eng, errs, err := frappe.Index(build, frappe.ExtractOptions{FS: fs})
//	...
//	res, err := eng.Query(ctx, `START n=node:node_auto_index('short_name: pci_read_bases')
//	                            MATCH n -[:calls*]-> m RETURN distinct m`)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package frappe

import (
	"context"

	"frappe/internal/core"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/query"
)

// Engine is an opened Frappé database (in-memory or disk-backed).
type Engine = core.Engine

// Symbol is a materialised graph node.
type Symbol = core.Symbol

// Reference is one use of a symbol.
type Reference = core.Reference

// SearchOptions constrain a code search (§4.1 of the paper).
type SearchOptions = core.SearchOptions

// Build describes a captured build: compile units and link steps.
type Build = extract.Build

// CompileUnit is one captured compiler invocation.
type CompileUnit = extract.CompileUnit

// Module is one captured linker invocation.
type Module = extract.Module

// ExtractOptions configure extraction (file system, include paths,
// predefined macros).
type ExtractOptions = extract.Options

// QueryResult is a Cypher result table.
type QueryResult = query.Result

// NodeID identifies a graph node.
type NodeID = graph.NodeID

// Index extracts a build into an in-memory engine. The returned error
// slice carries per-file extraction diagnostics; the final error is
// fatal.
func Index(build Build, opts ExtractOptions) (*Engine, []error, error) {
	return core.Index(build, opts)
}

// Open opens a store directory previously written with Engine.Save.
func Open(dir string) (*Engine, error) { return core.Open(dir) }

// Query parses and runs a Cypher query on any engine (convenience
// wrapper over Engine.Query).
func Query(ctx context.Context, e *Engine, text string) (*QueryResult, error) {
	return e.Query(ctx, text)
}

// FormatSymbol renders a symbol for terminal output.
func FormatSymbol(s Symbol) string { return core.FormatSymbol(s) }
