package frappe

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"frappe/internal/cpp"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
)

// TestFacadeQuickstart exercises the public API exactly as the
// quickstart example and README do.
func TestFacadeQuickstart(t *testing.T) {
	fs := cpp.MapFS{
		"foo.h":  "int bar(int);\n",
		"foo.c":  "#include \"foo.h\"\nint bar(int input) {\n\treturn input;\n}\n",
		"main.c": "#include \"foo.h\"\nint main(int argc, char **argv) {\n\treturn bar(argc);\n}\n",
	}
	build := Build{
		Units: []CompileUnit{
			{Source: "foo.c", Object: "foo.o"},
			{Source: "main.c", Object: "main.o"},
		},
		Modules: []Module{{Name: "prog", Objects: []string{"main.o", "foo.o"}}},
	}
	eng, diags, err := Index(build, ExtractOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics: %v", diags)
	}
	ctx := context.Background()

	res, err := Query(ctx, eng, `MATCH (f:function) -[:calls]-> (g:function) RETURN f.short_name, g.short_name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 || res.Rows[0][0].Scalar.AsString() != "main" {
		t.Fatalf("calls = %+v", res.Rows)
	}

	sym, ok, err := eng.GoToDefinition(ctx, "bar", "main.c", 3, 9)
	if err != nil || !ok {
		t.Fatalf("go-to-def: %v %v", ok, err)
	}
	if sym.File != "foo.c" || sym.Type != model.NodeFunction {
		t.Fatalf("definition = %+v", sym)
	}
	if out := FormatSymbol(sym); !strings.Contains(out, "bar(int)") {
		t.Fatalf("FormatSymbol = %q", out)
	}

	// Round-trip through a store directory.
	dir := filepath.Join(t.TempDir(), "db")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	res2, err := disk.Query(ctx, `MATCH (f:function) -[:calls]-> (g:function) RETURN count(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].Scalar.AsInt() != 1 {
		t.Fatalf("disk count = %+v", res2.Rows)
	}
}

// TestFacadeSearchOnKernel runs the Figure 3 search through the facade.
func TestFacadeSearchOnKernel(t *testing.T) {
	w := kernelgen.Generate(kernelgen.Tiny())
	eng, _, err := Index(w.Build, w.ExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	syms, err := eng.Search(context.Background(), SearchOptions{
		Pattern: "id",
		Types:   []model.NodeType{model.NodeField},
		Module:  "wakeup.elf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 2 {
		t.Fatalf("module search = %d results", len(syms))
	}
}
