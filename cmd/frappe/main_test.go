package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"frappe/internal/core"
	"frappe/internal/cpp"
	"frappe/internal/delta"
	"frappe/internal/extract"
	"frappe/internal/model"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for p, src := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestBuildFromTreeGlob(t *testing.T) {
	root := writeTree(t, map[string]string{
		"src/a.c":  "int a(void) { return 0; }\n",
		"src/b.c":  "int b(void) { return 1; }\n",
		"inc/x.h":  "int x;\n",
		"README.m": "not C\n",
	})
	build, err := buildFromTree(root, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Units) != 2 {
		t.Fatalf("units = %+v", build.Units)
	}
	if len(build.Modules) != 1 || len(build.Modules[0].Objects) != 2 {
		t.Fatalf("modules = %+v", build.Modules)
	}
	for _, u := range build.Units {
		if filepath.IsAbs(u.Source) {
			t.Fatalf("unit source not relative: %q", u.Source)
		}
	}
}

func TestBuildFromTreeEmpty(t *testing.T) {
	if _, err := buildFromTree(t.TempDir(), ""); err == nil {
		t.Fatal("empty tree should fail")
	}
}

func TestBuildFromCCLog(t *testing.T) {
	root := t.TempDir()
	log := filepath.Join(root, "build.json")
	content := `{"kind":"compile","source":"foo.c","object":"foo.o"}
{"kind":"compile","source":"main.c","object":"main.o"}
{"kind":"link","output":"prog","objects":["main.o","foo.o"],"libs":["libm"]}
`
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	build, err := buildFromTree(root, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Units) != 2 || len(build.Modules) != 1 {
		t.Fatalf("build = %+v", build)
	}
	if build.Modules[0].Name != "prog" || build.Modules[0].Libs[0] != "libm" {
		t.Fatalf("module = %+v", build.Modules[0])
	}
}

func TestBuildFromCCLogMalformed(t *testing.T) {
	root := t.TempDir()
	log := filepath.Join(root, "bad.json")
	if err := os.WriteFile(log, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFromTree(root, log); err == nil {
		t.Fatal("malformed log should fail")
	}
}

// TestIndexAndQueryRealTree drives the index command machinery against a
// real on-disk tree through the same paths the CLI uses.
func TestIndexAndQueryRealTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"util.h": "#ifndef UTIL_H\n#define UTIL_H\nint add(int, int);\n#endif\n",
		"util.c": "#include \"util.h\"\nint add(int a, int b) { return a + b; }\n",
		"app.c":  "#include \"util.h\"\nint run(void) { return add(1, 2); }\n",
	})
	if err := cmdIndex([]string{"-src", root, "-db", filepath.Join(root, "db")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", filepath.Join(root, "db"),
		`MATCH (f:function) -[:calls]-> (g:function) RETURN f.short_name, g.short_name`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", filepath.Join(root, "db"), "-profile",
		`MATCH (f:function) -[:calls]-> (g:function) RETURN f.short_name, g.short_name`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-db", filepath.Join(root, "db")}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(root, "map.svg")
	if err := cmdMap([]string{"-db", filepath.Join(root, "db"), "-out", out}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("map.svg: %v", err)
	}
}

// TestVerifyCommand runs the fsck subcommand against a freshly indexed
// store (clean) and again after seeding corruption (must fail).
func TestVerifyCommand(t *testing.T) {
	root := writeTree(t, map[string]string{
		"util.c": "int add(int a, int b) { return a + b; }\n",
		"app.c":  "int add(int, int);\nint run(void) { return add(1, 2); }\n",
	})
	db := filepath.Join(root, "db")
	if err := cmdIndex([]string{"-src", root, "-db", db}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-db", db}); err != nil {
		t.Fatalf("clean store failed verify: %v", err)
	}

	path := filepath.Join(db, "neostore.nodestore.db")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-db", db, "-q"}); err == nil {
		t.Fatal("verify passed a corrupted store")
	}
}

// TestUpdateCommand drives the full incremental-update loop through the
// CLI: index a tree, run a no-op update, mutate and delete files, update
// again, and require the on-disk store to match a from-scratch reindex
// while the journal audits clean.
func TestUpdateCommand(t *testing.T) {
	root := writeTree(t, map[string]string{
		"util.h": "#ifndef UTIL_H\n#define UTIL_H\nint add(int, int);\n#endif\n",
		"util.c": "#include \"util.h\"\nint add(int a, int b) { return a + b; }\n",
		"app.c":  "#include \"util.h\"\nint run(void) { return add(1, 2); }\n",
	})
	db := filepath.Join(root, "db")
	src := filepath.Join(root, "src")
	// Keep sources under a subdirectory so the db directory is not
	// scanned as part of the tree.
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"util.h", "util.c", "app.c"} {
		if err := os.Rename(filepath.Join(root, f), filepath.Join(src, f)); err != nil {
			t.Fatal(err)
		}
	}

	if err := cmdIndex([]string{"-src", src, "-db", db}); err != nil {
		t.Fatal(err)
	}
	// Untouched tree: update is a no-op and must not disturb the store.
	if err := cmdUpdate([]string{"-src", src, "-db", db}); err != nil {
		t.Fatalf("no-op update: %v", err)
	}
	recs, err := delta.LoadJournal(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 0 {
		t.Fatalf("journal after no-op: %+v", recs)
	}

	// Mutate one file and add a new one; the update must pick up both.
	appC := filepath.Join(src, "app.c")
	if err := os.WriteFile(appC, []byte("#include \"util.h\"\nint run(void) { return add(3, 4); }\nint extra(void) { return add(5, 6); }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "more.c"), []byte("int more(void) { return 9; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdUpdate([]string{"-src", src, "-db", db}); err != nil {
		t.Fatalf("update after mutation: %v", err)
	}

	// The updated store matches a from-scratch index of the same tree.
	build, err := buildFromTree(src, "")
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := extract.Run(build, extract.Options{FS: cpp.DirFS{Root: src}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if d := delta.Compute(scratch.Graph, eng.Source()); !d.Zero() {
		eng.Close()
		t.Fatalf("updated store differs from reindex: %+v", d)
	}
	ids, err := eng.LookupNamed("extra", model.NodeFunction)
	if err != nil || len(ids) != 1 {
		t.Fatalf("new function not in store: ids=%v err=%v", ids, err)
	}
	eng.Close()

	// Delete the definition of add: the store still verifies and the
	// journal now holds the initial record plus two updates.
	if err := os.Remove(filepath.Join(src, "util.c")); err != nil {
		t.Fatal(err)
	}
	if err := cmdUpdate([]string{"-src", src, "-db", db}); err != nil {
		t.Fatalf("update after delete: %v", err)
	}
	recs, err = delta.LoadJournal(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Epoch != 2 || recs[2].FilesRemoved != 1 {
		t.Fatalf("journal after delete: %+v", recs)
	}
	if err := cmdVerify([]string{"-db", db}); err != nil {
		t.Fatalf("store failed verify after updates: %v", err)
	}
}

// TestUpdateWithoutState: updating a directory that was never indexed
// incrementally fails with guidance, not a panic or silent rebuild.
func TestUpdateWithoutState(t *testing.T) {
	root := writeTree(t, map[string]string{
		"src/a.c": "int a(void) { return 0; }\n",
	})
	err := cmdUpdate([]string{"-src", filepath.Join(root, "src"), "-db", filepath.Join(root, "nope")})
	if err == nil || !strings.Contains(err.Error(), "no incremental state") {
		t.Fatalf("update without state: %v", err)
	}
}
