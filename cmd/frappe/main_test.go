package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for p, src := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestBuildFromTreeGlob(t *testing.T) {
	root := writeTree(t, map[string]string{
		"src/a.c":  "int a(void) { return 0; }\n",
		"src/b.c":  "int b(void) { return 1; }\n",
		"inc/x.h":  "int x;\n",
		"README.m": "not C\n",
	})
	build, err := buildFromTree(root, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Units) != 2 {
		t.Fatalf("units = %+v", build.Units)
	}
	if len(build.Modules) != 1 || len(build.Modules[0].Objects) != 2 {
		t.Fatalf("modules = %+v", build.Modules)
	}
	for _, u := range build.Units {
		if filepath.IsAbs(u.Source) {
			t.Fatalf("unit source not relative: %q", u.Source)
		}
	}
}

func TestBuildFromTreeEmpty(t *testing.T) {
	if _, err := buildFromTree(t.TempDir(), ""); err == nil {
		t.Fatal("empty tree should fail")
	}
}

func TestBuildFromCCLog(t *testing.T) {
	root := t.TempDir()
	log := filepath.Join(root, "build.json")
	content := `{"kind":"compile","source":"foo.c","object":"foo.o"}
{"kind":"compile","source":"main.c","object":"main.o"}
{"kind":"link","output":"prog","objects":["main.o","foo.o"],"libs":["libm"]}
`
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	build, err := buildFromTree(root, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(build.Units) != 2 || len(build.Modules) != 1 {
		t.Fatalf("build = %+v", build)
	}
	if build.Modules[0].Name != "prog" || build.Modules[0].Libs[0] != "libm" {
		t.Fatalf("module = %+v", build.Modules[0])
	}
}

func TestBuildFromCCLogMalformed(t *testing.T) {
	root := t.TempDir()
	log := filepath.Join(root, "bad.json")
	if err := os.WriteFile(log, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFromTree(root, log); err == nil {
		t.Fatal("malformed log should fail")
	}
}

// TestIndexAndQueryRealTree drives the index command machinery against a
// real on-disk tree through the same paths the CLI uses.
func TestIndexAndQueryRealTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"util.h": "#ifndef UTIL_H\n#define UTIL_H\nint add(int, int);\n#endif\n",
		"util.c": "#include \"util.h\"\nint add(int a, int b) { return a + b; }\n",
		"app.c":  "#include \"util.h\"\nint run(void) { return add(1, 2); }\n",
	})
	if err := cmdIndex([]string{"-src", root, "-db", filepath.Join(root, "db")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", filepath.Join(root, "db"),
		`MATCH (f:function) -[:calls]-> (g:function) RETURN f.short_name, g.short_name`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-db", filepath.Join(root, "db")}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(root, "map.svg")
	if err := cmdMap([]string{"-db", filepath.Join(root, "db"), "-out", out}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("map.svg: %v", err)
	}
}

// TestVerifyCommand runs the fsck subcommand against a freshly indexed
// store (clean) and again after seeding corruption (must fail).
func TestVerifyCommand(t *testing.T) {
	root := writeTree(t, map[string]string{
		"util.c": "int add(int a, int b) { return a + b; }\n",
		"app.c":  "int add(int, int);\nint run(void) { return add(1, 2); }\n",
	})
	db := filepath.Join(root, "db")
	if err := cmdIndex([]string{"-src", root, "-db", db}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-db", db}); err != nil {
		t.Fatalf("clean store failed verify: %v", err)
	}

	path := filepath.Join(db, "neostore.nodestore.db")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-db", db, "-q"}); err == nil {
		t.Fatal("verify passed a corrupted store")
	}
}
