// Command frappe is the Frappé CLI: index a codebase into a graph store,
// then run the paper's use cases against it — Cypher queries, code
// search, go-to-definition, find-references, program slices, statistics
// and code-map rendering.
//
//	frappe index   -gen [-scale N] -db DIR [-shards N]  index the synthetic kernel
//	frappe index   -src DIR [-cc-log FILE] -db DIR  index a real C tree
//	frappe update  -src DIR|-gen -db DIR          incrementally re-index changed files
//	frappe query   -db DIR 'CYPHER...'            run a Cypher query
//	frappe search  -db DIR -pattern P [-type T] [-module M] [-dir D]
//	frappe def     -db DIR -name N -file F -line L -col C
//	frappe refs    -db DIR -name N [-type T]
//	frappe slice   -db DIR -fn NAME [-forward] [-depth N]
//	frappe stats   -db DIR
//	frappe map     -db DIR -out FILE.svg [-highlight NAME]
//	frappe verify  -db DIR                        fsck a store directory + update journal
//	frappe serve   -db DIR [-src DIR|-gen] [-addr HOST:PORT] ...
//
// serve with -src or -gen keeps the extraction session alive and
// exposes POST /api/admin/update: the server re-extracts only dirty
// translation units and swaps the new graph in atomically while
// queries keep running.
//
// A store indexed with -shards N is served through the scatter-gather
// coordinator: queries fan out one worker per shard and merge back into
// the single-engine row order. serve autodetects the sharded layout;
// -replicas/-hedge add hedged reads over the immutable store files, and
// -replica-of serves another process's store directory read-only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"frappe/internal/atomicfile"
	"frappe/internal/codemap"
	"frappe/internal/coord"
	"frappe/internal/core"
	"frappe/internal/cpp"
	"frappe/internal/delta"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/gstats"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/obs"
	"frappe/internal/obs/trace"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/server"
	"frappe/internal/shard"
	"frappe/internal/store"
	"frappe/internal/traversal"
)

// version is stamped by the build (-ldflags "-X main.version=...");
// it labels frappe_build_info so scrapes can tell deployments apart.
var version = "dev"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "index":
		err = cmdIndex(args)
	case "update":
		err = cmdUpdate(args)
	case "query":
		err = cmdQuery(args)
	case "search":
		err = cmdSearch(args)
	case "def":
		err = cmdDef(args)
	case "refs":
		err = cmdRefs(args)
	case "slice":
		err = cmdSlice(args)
	case "stats":
		err = cmdStats(args)
	case "map":
		err = cmdMap(args)
	case "verify":
		err = cmdVerify(args)
	case "serve":
		err = cmdServe(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "frappe: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "frappe: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: frappe <command> [flags]

commands:
  index    build a graph store from source (or the synthetic kernel)
  update   incrementally re-index only the files that changed
  query    run a Cypher query against a store
  search   code search by name/type/module/directory
  def      go to definition of a symbol reference
  refs     find references to a symbol
  slice    backward/forward program slice over the call graph
  stats    graph metrics and degree hubs
  map      render the cartographic code map as SVG
  verify   check a store's checksums and structure (fsck)
  serve    HTTP API + query console over a store
`)
}

func openDB(db string) (*core.Engine, error) {
	if db == "" {
		return nil, fmt.Errorf("missing -db")
	}
	if shard.IsSharded(db) {
		// One-shot commands read a sharded store through the composite
		// source: global IDs, cut-edge adjacency, no coordinator needed.
		set, err := shard.Open(db, store.Options{})
		if err != nil {
			return nil, err
		}
		eng := core.FromSource(set)
		if st, ok, err := gstats.Load(db); err == nil && ok {
			eng.SeedGraphStats(st)
		}
		return eng, nil
	}
	return core.Open(db)
}

// sourceFlags are the flags describing where source code comes from,
// shared by index, update, and serve (live mode).
type sourceFlags struct {
	gen      *bool
	scale    *int
	src      *string
	ccLog    *string
	includes *string
	jobs     *int
}

func addSourceFlags(fl *flag.FlagSet) *sourceFlags {
	return &sourceFlags{
		gen:      fl.Bool("gen", false, "use the synthetic Linux-shaped kernel instead of real sources"),
		scale:    fl.Int("scale", 1, "synthetic kernel scale factor"),
		src:      fl.String("src", "", "source tree root (real-code mode)"),
		ccLog:    fl.String("cc-log", "", "frappe-cc build capture (JSON lines); default: compile every .c and link one module"),
		includes: fl.String("I", "include", "comma-separated include paths (relative to -src)"),
		jobs:     fl.Int("j", 0, "extraction frontend workers (0 = one per CPU, 1 = serial)"),
	}
}

// given reports whether any source was specified.
func (sf *sourceFlags) given() bool { return *sf.gen || *sf.src != "" }

// resolve materialises the build description and extraction options.
// Called once per (re-)extraction so update and serve always see the
// current tree (for -src the unit list is rescanned from disk).
func (sf *sourceFlags) resolve() (extract.Build, extract.Options, error) {
	switch {
	case *sf.gen:
		w := kernelgen.Generate(kernelgen.Scaled(*sf.scale))
		opts := w.ExtractOptions()
		opts.Jobs = sf.jobsValue()
		return w.Build, opts, nil
	case *sf.src != "":
		fsys := cpp.DirFS{Root: *sf.src}
		opts := extract.Options{FS: fsys, IncludePaths: strings.Split(*sf.includes, ","), Jobs: sf.jobsValue()}
		build, err := buildFromTree(*sf.src, *sf.ccLog)
		return build, opts, err
	}
	return extract.Build{}, extract.Options{}, fmt.Errorf("needs -gen or -src")
}

// jobsValue maps the -j flag onto extract.Options.Jobs: the flag's
// 0-means-auto default becomes the extractor's negative one-per-CPU
// sentinel.
func (sf *sourceFlags) jobsValue() int {
	if *sf.jobs <= 0 {
		return -1
	}
	return *sf.jobs
}

func printDiagnostics(errs []error) {
	for i, e := range errs {
		if i >= 10 {
			fmt.Fprintf(os.Stderr, "... and %d more diagnostics\n", len(errs)-10)
			break
		}
		fmt.Fprintf(os.Stderr, "warning: %v\n", e)
	}
}

// stageFor picks the on-disk store layout for one persisted graph: the
// plain single store, or a subsystem-partitioned sharded store with its
// cut-edge table and ownership map.
func stageFor(g *graph.Graph, shards int) func(*atomicfile.Commit) error {
	if shards > 1 {
		return shard.Split(g, shards).Stage
	}
	return func(c *atomicfile.Commit) error { return store.StageTo(c, g) }
}

func cmdIndex(args []string) error {
	fl := flag.NewFlagSet("index", flag.ExitOnError)
	sf := addSourceFlags(fl)
	db := fl.String("db", "frappe.db", "output store directory")
	shards := fl.Int("shards", 0, "partition the store into N subsystem shards (0/1 = single store)")
	fl.Parse(args)

	start := time.Now()
	build, opts, err := sf.resolve()
	if err != nil {
		return fmt.Errorf("index %w", err)
	}
	if *sf.gen {
		w := kernelgen.Generate(kernelgen.Scaled(*sf.scale))
		fmt.Printf("generated synthetic kernel: %d files, %d lines\n", len(w.FS), w.LineCount())
	}

	sess, res, err := delta.NewSession(build, opts)
	if err != nil {
		return err
	}
	printDiagnostics(res.Errors)
	eng := core.FromGraph(res.Graph)
	m := eng.Stats()
	// Store files, incremental-update state and the restarted journal all
	// land as one crash-consistent commit: a kill mid-index leaves either
	// no store or a complete one, never a store without its state.
	if err := delta.PersistIndexWith(*db, sess, res.Graph, delta.Record{
		Epoch:            sess.Manifest().Epoch,
		Time:             time.Now().UTC().Format(time.RFC3339),
		FilesAdded:       len(sess.Manifest().Files),
		UnitsReextracted: len(build.Units),
		NodesAdded:       int(m.Nodes),
		EdgesAdded:       int(m.Edges),
		WallMillis:       float64(time.Since(start).Microseconds()) / 1000,
		NodeCount:        m.Nodes,
		EdgeCount:        m.Edges,
	}, stageFor(res.Graph, *shards)); err != nil {
		return err
	}
	layout := ""
	if *shards > 1 {
		layout = fmt.Sprintf(" in %d shards", *shards)
	}
	fmt.Printf("indexed in %v: %d nodes, %d edges (%.2f edges/node) -> %s%s\n",
		time.Since(start).Round(time.Millisecond), m.Nodes, m.Edges, m.Density, *db, layout)
	return nil
}

// recordOf converts an applied update into its journal record.
func recordOf(up *delta.Update, now time.Time, wall time.Duration) delta.Record {
	return delta.Record{
		Epoch:            up.Epoch,
		Time:             now.UTC().Format(time.RFC3339),
		FilesAdded:       len(up.Plan.Added),
		FilesModified:    len(up.Plan.Modified),
		FilesRemoved:     len(up.Plan.Removed),
		UnitsReextracted: up.Reextracted,
		NodesAdded:       up.Diff.NodesAdded,
		NodesRemoved:     up.Diff.NodesRemoved,
		EdgesAdded:       up.Diff.EdgesAdded,
		EdgesRemoved:     up.Diff.EdgesRemoved,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		NodeCount:        up.Result.Graph.NodeCount(),
		EdgeCount:        up.Result.Graph.EdgeCount(),
	}
}

func summaryOf(rec delta.Record) *core.UpdateSummary {
	return &core.UpdateSummary{
		Epoch:            rec.Epoch,
		Time:             rec.Time,
		FilesAdded:       rec.FilesAdded,
		FilesModified:    rec.FilesModified,
		FilesRemoved:     rec.FilesRemoved,
		UnitsReextracted: rec.UnitsReextracted,
		NodesAdded:       rec.NodesAdded,
		NodesRemoved:     rec.NodesRemoved,
		EdgesAdded:       rec.EdgesAdded,
		EdgesRemoved:     rec.EdgesRemoved,
		WallMillis:       rec.WallMillis,
	}
}

// persistUpdate writes everything an applied update changes — store
// files, session state, journal — as one crash-consistent commit, before
// anything is published.
func persistUpdate(db string, sess *delta.Session, up *delta.Update, wall time.Duration) (delta.Record, error) {
	rec := recordOf(up, time.Now(), wall)
	if err := delta.PersistUpdate(db, sess, up.Result.Graph, rec); err != nil {
		return delta.Record{}, err
	}
	return rec, nil
}

// lastJournalSummary returns the most recent journalled update as an
// engine summary, nil when there is no usable history.
func lastJournalSummary(db string) *core.UpdateSummary {
	recs, err := delta.LoadJournal(db)
	if err != nil || len(recs) == 0 {
		return nil
	}
	return summaryOf(recs[len(recs)-1])
}

func sourceName(sf *sourceFlags) string {
	if *sf.gen {
		return fmt.Sprintf("synthetic kernel (scale %d)", *sf.scale)
	}
	return *sf.src
}

func cmdUpdate(args []string) error {
	fl := flag.NewFlagSet("update", flag.ExitOnError)
	sf := addSourceFlags(fl)
	db := fl.String("db", "frappe.db", "store directory to update")
	fl.Parse(args)

	build, opts, err := sf.resolve()
	if err != nil {
		return fmt.Errorf("update %w", err)
	}
	sess, err := delta.Resume(*db, opts)
	if err != nil {
		return fmt.Errorf("update: %s has no incremental state (re-run frappe index): %w", *db, err)
	}
	old, err := core.Open(*db)
	if err != nil {
		return err
	}
	start := time.Now()
	up, err := sess.Update(build, old.Source())
	old.Close()
	if err != nil {
		return err
	}
	if up.NoOp {
		fmt.Printf("store %s is current at epoch %d; nothing to do\n", *db, up.Epoch)
		return nil
	}
	printDiagnostics(up.Result.Errors)
	wall := time.Since(start)
	rec, err := persistUpdate(*db, sess, up, wall)
	if err != nil {
		return err
	}
	fmt.Printf("updated to epoch %d in %v: re-extracted %d/%d units (+%d/-%d files changed), nodes +%d/-%d, edges +%d/-%d -> %d nodes, %d edges\n",
		rec.Epoch, wall.Round(time.Millisecond), up.Reextracted, len(build.Units),
		len(up.Plan.Added)+len(up.Plan.Modified), len(up.Plan.Removed),
		rec.NodesAdded, rec.NodesRemoved, rec.EdgesAdded, rec.EdgesRemoved,
		rec.NodeCount, rec.EdgeCount)
	return nil
}

// ccRecord is one line of a frappe-cc capture.
type ccRecord struct {
	Kind    string   `json:"kind"` // "compile" | "link"
	Source  string   `json:"source,omitempty"`
	Object  string   `json:"object,omitempty"`
	Output  string   `json:"output,omitempty"`
	Objects []string `json:"objects,omitempty"`
	Libs    []string `json:"libs,omitempty"`
}

func buildFromTree(root, ccLog string) (extract.Build, error) {
	var build extract.Build
	if ccLog != "" {
		f, err := os.Open(ccLog)
		if err != nil {
			return build, err
		}
		defer f.Close()
		dec := json.NewDecoder(f)
		for dec.More() {
			var r ccRecord
			if err := dec.Decode(&r); err != nil {
				return build, fmt.Errorf("cc-log: %w", err)
			}
			switch r.Kind {
			case "compile":
				build.Units = append(build.Units, extract.CompileUnit{Source: r.Source, Object: r.Object})
			case "link":
				build.Modules = append(build.Modules, extract.Module{Name: r.Output, Objects: r.Objects, Libs: r.Libs})
			}
		}
		return build, nil
	}
	// No capture: compile every .c under root, link everything into one
	// module named after the directory.
	var objects []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".c") {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		obj := strings.TrimSuffix(rel, ".c") + ".o"
		build.Units = append(build.Units, extract.CompileUnit{Source: rel, Object: obj})
		objects = append(objects, obj)
		return nil
	})
	if err != nil {
		return build, err
	}
	if len(build.Units) == 0 {
		return build, fmt.Errorf("no .c files under %s", root)
	}
	build.Modules = []extract.Module{{Name: filepath.Base(root) + ".elf", Objects: objects}}
	return build, nil
}

func cmdQuery(args []string) error {
	fl := flag.NewFlagSet("query", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	timeout := fl.Duration("timeout", 30*time.Second, "query deadline")
	maxRows := fl.Int("max-rows", 0, "row budget (0 = unlimited)")
	maxSteps := fl.Int64("max-steps", 0, "pattern-expansion budget (0 = unlimited)")
	profile := fl.Bool("profile", false, "trace execution: per-operator rows, DB hits, wall time")
	explain := fl.Bool("explain", false, "print the query plan (anchors, closure rewrites) without executing")
	streamOn := fl.Bool("stream", false, "print rows as they are produced instead of materialising the result (tab-separated)")
	fl.Parse(args)
	if fl.NArg() != 1 {
		return fmt.Errorf("query needs exactly one Cypher string argument")
	}
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	eng.QueryLimits = query.Limits{MaxRows: *maxRows, MaxSteps: *maxSteps}
	if *explain {
		plan, err := eng.ExplainQuery(fl.Arg(0))
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	if *streamOn {
		// Rows print as the executor produces them: memory stays bounded
		// by the stream's channel depth, not the result size.
		snap := eng.Snapshot()
		st, _, err := eng.StreamQuery(ctx, snap, fl.Arg(0), 0)
		if err != nil {
			return err
		}
		cols, err := st.Columns(ctx)
		if err != nil {
			return err
		}
		fmt.Println(strings.Join(cols, "\t"))
		src := snap.Source()
		var n int64
		for row := range st.Rows() {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Format(src)
			}
			fmt.Println(strings.Join(cells, "\t"))
			n++
		}
		if _, _, err := st.Wait(); err != nil {
			return err
		}
		fmt.Printf("%d rows in %v (streamed)\n", n, time.Since(start).Round(time.Microsecond))
		return nil
	}
	if *profile {
		res, prof, err := eng.QueryProfile(ctx, fl.Arg(0))
		if prof != nil {
			// The trace survives an abort: show where the budget went even
			// when the query failed.
			fmt.Print(prof.Format())
		}
		if err != nil {
			return err
		}
		fmt.Print(res.Format(eng.Source()))
		fmt.Printf("%d rows in %v\n", res.Count(), time.Since(start).Round(time.Microsecond))
		return nil
	}
	res, err := eng.Query(ctx, fl.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(res.Format(eng.Source()))
	fmt.Printf("%d rows in %v\n", res.Count(), time.Since(start).Round(time.Microsecond))
	return nil
}

func cmdSearch(args []string) error {
	fl := flag.NewFlagSet("search", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	pattern := fl.String("pattern", "", "SHORT_NAME pattern (* and ? wildcards)")
	typ := fl.String("type", "", "node type filter (function, struct, macro, ...)")
	module := fl.String("module", "", "restrict to a module (Figure 3)")
	dir := fl.String("dir", "", "restrict to a directory")
	limit := fl.Int("limit", 50, "max results")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	opts := core.SearchOptions{Pattern: *pattern, Module: *module, Dir: *dir, Limit: *limit}
	if *typ != "" {
		opts.Types = []model.NodeType{model.NodeType(*typ)}
	}
	syms, err := eng.Search(context.Background(), opts)
	if err != nil {
		return err
	}
	for _, s := range syms {
		fmt.Println(core.FormatSymbol(s))
	}
	fmt.Printf("%d results\n", len(syms))
	return nil
}

func cmdDef(args []string) error {
	fl := flag.NewFlagSet("def", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	name := fl.String("name", "", "symbol under the cursor")
	file := fl.String("file", "", "file of the reference")
	line := fl.Int("line", 0, "line of the reference")
	col := fl.Int("col", 0, "column of the reference")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	sym, ok, err := eng.GoToDefinition(context.Background(), *name, *file, *line, *col)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Println("no definition found at that position")
		return nil
	}
	fmt.Println(core.FormatSymbol(sym))
	return nil
}

func cmdRefs(args []string) error {
	fl := flag.NewFlagSet("refs", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	name := fl.String("name", "", "symbol name")
	typ := fl.String("type", "", "node type disambiguator")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	id, err := eng.MustLookupOne(*name, model.NodeType(*typ))
	if err != nil {
		return err
	}
	refs, err := eng.FindReferences(context.Background(), id)
	if err != nil {
		return err
	}
	for _, r := range refs {
		fmt.Printf("%-22s %s:%d:%d  (from %s)\n", r.Kind, r.File, r.Line, r.Col, r.From.ShortName)
	}
	fmt.Printf("%d references\n", len(refs))
	return nil
}

func cmdSlice(args []string) error {
	fl := flag.NewFlagSet("slice", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	fn := fl.String("fn", "", "seed function")
	forward := fl.Bool("forward", false, "forward slice (callers) instead of backward (callees)")
	depth := fl.Int("depth", 0, "max depth (0 = unbounded)")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	id, err := eng.MustLookupOne(*fn, model.NodeFunction)
	if err != nil {
		return err
	}
	var syms []core.Symbol
	if *forward {
		syms = eng.ForwardSlice(id, *depth)
	} else {
		syms = eng.BackwardSlice(id, *depth)
	}
	for _, s := range syms {
		fmt.Println(core.FormatSymbol(s))
	}
	fmt.Printf("%d functions in slice\n", len(syms))
	return nil
}

func cmdStats(args []string) error {
	fl := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	top := fl.Int("top", 10, "top-degree nodes to list")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	m := eng.Stats()
	fmt.Printf("nodes: %d\nedges: %d\ndensity: %.2f edges/node\n", m.Nodes, m.Edges, m.Density)
	fmt.Println("\ntop-degree nodes (Figure 7 hubs):")
	for _, h := range graph.TopDegreeNodes(eng.Source(), *top) {
		fmt.Printf("  %-14s %-24s degree %d\n", h.Type, h.Name, h.Degree)
	}
	return nil
}

func cmdVerify(args []string) error {
	fl := flag.NewFlagSet("verify", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	quiet := fl.Bool("q", false, "print problems only")
	flipByte := fl.Int64("flip-byte", -1, "chaos helper: XOR 0xFF into the byte at this offset of -flip-file, then exit (corruption drills; >= file size clamps to the middle)")
	flipFile := fl.String("flip-file", store.NodeFile, "file (relative to -db) whose byte -flip-byte flips")
	fl.Parse(args)
	if *db == "" {
		return fmt.Errorf("missing -db")
	}
	if *flipByte >= 0 {
		return flipByteAt(filepath.Join(*db, *flipFile), *flipByte)
	}
	if shard.IsSharded(*db) {
		return verifySharded(*db, *quiet)
	}
	rep, err := store.Verify(*db)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("store %s: format v%d, %d nodes, %d edges\n", rep.Dir, rep.FormatVersion, rep.Nodes, rep.Edges)
		for _, fc := range rep.Files {
			status := "ok"
			if !fc.OK {
				status = "CORRUPT"
			}
			fmt.Printf("  %-34s %10d bytes  %5d chunks  %s\n", fc.Name, fc.Bytes, fc.Chunks, status)
		}
	}
	// Audit the incremental-update history alongside the store files.
	journalProblems := delta.AuditJournal(*db)
	if !*quiet {
		if recs, err := delta.LoadJournal(*db); err == nil && len(recs) > 0 {
			last := recs[len(recs)-1]
			fmt.Printf("  update journal: %d record(s), epoch %d, last at %s\n",
				len(recs), last.Epoch, last.Time)
		}
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(os.Stderr, "problem: %v\n", p)
	}
	for _, p := range journalProblems {
		fmt.Fprintf(os.Stderr, "problem: %v\n", p)
	}
	if n := len(rep.Problems) + len(journalProblems); !rep.OK() || len(journalProblems) > 0 {
		return fmt.Errorf("%d problem(s) found in %s", n, *db)
	}
	if !*quiet {
		fmt.Println("store is clean")
	}
	return nil
}

// flipByteAt XORs 0xFF into one byte of path — the deterministic
// corruption injection the chaos CI job uses (replacing ad-hoc
// scripting). An offset past the end clamps to the file's middle so
// callers need not know file sizes.
func flipByteAt(path string, off int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("%s is empty; nothing to corrupt", path)
	}
	if off >= int64(len(b)) {
		off = int64(len(b)) / 2
	}
	b[off] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("flipped byte %d of %s\n", off, path)
	return nil
}

// verifySharded fscks a partitioned store: every shard store, the
// cut-edge store, the sharding sidecars, and the update journal.
func verifySharded(db string, quiet bool) error {
	m, err := shard.LoadManifest(db)
	if err != nil {
		return err
	}
	problems := 0
	dirs := make([]string, 0, m.Shards+1)
	for i := 0; i < m.Shards; i++ {
		dirs = append(dirs, shard.ShardDir(i))
	}
	dirs = append(dirs, shard.CutDir)
	if !quiet {
		fmt.Printf("sharded store %s: %d shards\n", db, m.Shards)
	}
	for _, d := range dirs {
		rep, err := store.Verify(filepath.Join(db, d))
		if err != nil {
			fmt.Fprintf(os.Stderr, "problem: %s: %v\n", d, err)
			problems++
			continue
		}
		if !quiet {
			status := "ok"
			if !rep.OK() {
				status = "CORRUPT"
			}
			fmt.Printf("  %-12s format v%d, %d nodes, %d edges  %s\n", d, rep.FormatVersion, rep.Nodes, rep.Edges, status)
		}
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "problem: %s: %v\n", d, p)
			problems++
		}
	}
	if _, err := os.Stat(filepath.Join(db, shard.MapFile)); err != nil {
		fmt.Fprintf(os.Stderr, "problem: %v\n", err)
		problems++
	}
	journalProblems := delta.AuditJournal(db)
	for _, p := range journalProblems {
		fmt.Fprintf(os.Stderr, "problem: %v\n", p)
	}
	problems += len(journalProblems)
	if problems > 0 {
		return fmt.Errorf("%d problem(s) found in %s", problems, db)
	}
	if !quiet {
		fmt.Println("sharded store is clean")
	}
	return nil
}

func cmdServe(args []string) error {
	fl := flag.NewFlagSet("serve", flag.ExitOnError)
	sf := addSourceFlags(fl)
	db := fl.String("db", "frappe.db", "store directory")
	addr := fl.String("addr", "127.0.0.1:7474", "listen address")
	queryTimeout := fl.Duration("query-timeout", 30*time.Second, "per-query deadline")
	maxConcurrent := fl.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests before shedding with 503 (<0 disables)")
	maxBodyBytes := fl.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "max request body size in bytes before 413 (<0 disables)")
	maxRows := fl.Int("max-rows", 1_000_000, "per-query row budget (0 = unlimited)")
	maxSteps := fl.Int64("max-steps", 50_000_000, "per-query pattern-expansion budget (0 = unlimited)")
	drain := fl.Duration("drain-timeout", server.DefaultDrainTimeout, "max time to drain in-flight requests on shutdown")
	pprofOn := fl.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	slowMS := fl.Int64("slow-ms", server.DefaultSlowThreshold.Milliseconds(), "log requests slower than this many milliseconds (<0 disables)")
	qcacheMB := fl.Int("qcache-mb", 64, "query result cache budget in MB (0 disables the cache)")
	qcacheEntries := fl.Int("qcache-entries", qcache.DefaultMaxEntries, "query result cache entry cap")
	updateRetries := fl.Int("update-retries", 3, "attempts per admin update before reporting failure (1 disables retry)")
	updateRetryBackoff := fl.Duration("update-retry-backoff", 500*time.Millisecond, "initial backoff between update retries (doubles each attempt)")
	logFormat := fl.String("log-format", "text", "server log format: text or json")
	traceSample := fl.Float64("trace-sample", trace.DefaultSampleRate, "fraction of unremarkable request traces to retain in [0,1]; slow/errored/degraded traces are always kept (<0 disables tracing)")
	traceExport := fl.String("trace-export", "", "append every retained trace as JSON lines to this file (rotated)")
	shards := fl.Int("shards", 0, "serve (and in live mode persist) the store as N subsystem shards behind the scatter-gather coordinator (0 = follow the store's on-disk layout)")
	replicas := fl.Int("replicas", 1, "shard-set replicas to open (sharded stores; immutable files make replicas free)")
	hedge := fl.Duration("hedge", 0, "hedged reads: start a second replica execution when the first has not answered within this delay (0 disables; needs -replicas >= 2)")
	replicaOf := fl.String("replica-of", "", "serve another process's store directory read-only (admin updates get 501)")
	fl.Parse(args)

	// Structured logging: every server log line (slow requests, panics,
	// write failures, update retries) goes to stderr in the chosen
	// format, carrying request and trace IDs. Built before engine wiring
	// so the update-retry path logs structured too.
	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		return fmt.Errorf("serve: -log-format must be \"text\" or \"json\", got %q", *logFormat)
	}

	limits := query.Limits{MaxRows: *maxRows, MaxSteps: *maxSteps}
	staticDB := *db
	if *replicaOf != "" {
		if sf.given() {
			return fmt.Errorf("serve: -replica-of is read-only; it cannot be combined with -src or -gen")
		}
		staticDB = *replicaOf
	}

	var eng *core.Engine
	var srv *server.Server
	var crd *coord.Coordinator
	if sf.given() {
		// Live mode: keep the extraction session in memory and expose
		// POST /api/admin/update. The graph is served in-memory (assembled
		// from the session's artifacts) so store files can be rewritten by
		// an update while pinned snapshots keep serving.
		build, opts, err := sf.resolve()
		if err != nil {
			return fmt.Errorf("serve %w", err)
		}
		// Adopt an existing sharded layout when -shards was not given, so
		// restarting a sharded deployment needs no flag archaeology.
		if *shards <= 1 && shard.IsSharded(*db) {
			if m, err := shard.LoadManifest(*db); err == nil {
				*shards = m.Shards
			}
		}
		sess, err := delta.Resume(*db, opts)
		if err != nil {
			// No incremental state yet: index from scratch now.
			fmt.Printf("frappe: no incremental state in %s; extracting %s\n", *db, sourceName(sf))
			var res *extract.Result
			sess, res, err = delta.NewSession(build, opts)
			if err != nil {
				return err
			}
			printDiagnostics(res.Errors)
			// Same crash-consistent bundle as `frappe index`: store, state
			// and a restarted journal land atomically or not at all.
			if err := delta.PersistIndexWith(*db, sess, res.Graph, delta.Record{
				Epoch:            sess.Manifest().Epoch,
				Time:             time.Now().UTC().Format(time.RFC3339),
				FilesAdded:       len(sess.Manifest().Files),
				UnitsReextracted: len(build.Units),
				NodesAdded:       int(res.Graph.NodeCount()),
				EdgesAdded:       int(res.Graph.EdgeCount()),
				NodeCount:        res.Graph.NodeCount(),
				EdgeCount:        res.Graph.EdgeCount(),
			}, stageFor(res.Graph, *shards)); err != nil {
				return err
			}
		}
		res := sess.Assemble(build)
		if *shards > 1 {
			if !shard.IsSharded(*db) {
				// The store predates -shards: re-lay the current epoch out as
				// shards in one atomic commit (the journal restarts, like a
				// fresh index — partitioning is a layout change, not an edit).
				if err := delta.PersistIndexWith(*db, sess, res.Graph, delta.Record{
					Epoch:     sess.Manifest().Epoch,
					Time:      time.Now().UTC().Format(time.RFC3339),
					NodeCount: res.Graph.NodeCount(),
					EdgeCount: res.Graph.EdgeCount(),
				}, stageFor(res.Graph, *shards)); err != nil {
					return fmt.Errorf("serve: re-partitioning %s into %d shards: %w", *db, *shards, err)
				}
			}
			crd, err = coord.Open(*db, *replicas, store.Options{})
			if err != nil {
				return err
			}
			crd.Limits = limits
			crd.Hedge = *hedge
			crd.SetEpoch(sess.Manifest().Epoch, lastJournalSummary(*db))
			eng = crd.Engine()
			eng.QueryLimits = limits
			srv = server.New(eng)
			srv.Coord = crd
			// Updates are stop-the-world at the store level: the session
			// re-extracts and persists a full sharded epoch, then the
			// coordinator reopens the shard set and swaps it in while pinned
			// requests finish on the old one.
			srv.Update = func(ctx context.Context) (server.UpdateResult, error) {
				var result server.UpdateResult
				_, err := crd.Update(func(old graph.Source) (*graph.Graph, int64, *core.UpdateSummary, error) {
					start := time.Now()
					b, _, err := sf.resolve()
					if err != nil {
						return nil, 0, nil, err
					}
					up, err := sess.Update(b, old)
					if err != nil {
						return nil, 0, nil, err
					}
					if up.NoOp {
						result = server.UpdateResult{Applied: false, Epoch: up.Epoch}
						return nil, 0, nil, nil
					}
					rec := recordOf(up, time.Now(), time.Since(start))
					if err := delta.PersistUpdateWith(*db, sess, up.Result.Graph, rec, stageFor(up.Result.Graph, *shards)); err != nil {
						return nil, 0, nil, err
					}
					sum := summaryOf(rec)
					result = server.UpdateResult{Applied: true, Epoch: up.Epoch, Summary: sum}
					return up.Result.Graph, up.Epoch, sum, nil
				})
				return result, err
			}
		} else {
			eng = core.FromGraph(res.Graph)
			eng.SetEpoch(sess.Manifest().Epoch, lastJournalSummary(*db))
			eng.QueryLimits = limits
			srv = server.New(eng)
			srv.Update = func(ctx context.Context) (server.UpdateResult, error) {
				var result server.UpdateResult
				_, err := eng.UpdateWith(func(old graph.Source) (*graph.Graph, int64, *core.UpdateSummary, error) {
					start := time.Now()
					b, _, err := sf.resolve()
					if err != nil {
						return nil, 0, nil, err
					}
					up, err := sess.Update(b, old)
					if err != nil {
						return nil, 0, nil, err
					}
					if up.NoOp {
						result = server.UpdateResult{Applied: false, Epoch: up.Epoch}
						return nil, 0, nil, nil
					}
					rec, err := persistUpdate(*db, sess, up, time.Since(start))
					if err != nil {
						return nil, 0, nil, err
					}
					sum := summaryOf(rec)
					result = server.UpdateResult{Applied: true, Epoch: up.Epoch, Summary: sum}
					return up.Result.Graph, up.Epoch, sum, nil
				})
				return result, err
			}
		}
		// Transient update failures (a full disk, a flaky filesystem) are
		// retried with backoff; planning is idempotent and a failed persist
		// never publishes, so a retry replans from the same inputs.
		if *updateRetries > 1 {
			srv.Update = server.WithRetry(srv.Update, *updateRetries, *updateRetryBackoff,
				func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) })
		}
		// Catch up with any tree changes (or lost cache entries) since the
		// last index before accepting traffic.
		if catchUp, err := srv.Update(context.Background()); err != nil {
			return fmt.Errorf("serve: initial catch-up update: %w", err)
		} else if catchUp.Applied {
			fmt.Printf("frappe: caught up to epoch %d (%d units re-extracted)\n",
				catchUp.Epoch, catchUp.Summary.UnitsReextracted)
		}
	} else if shard.IsSharded(staticDB) {
		// Static sharded store: serve through the coordinator. With
		// -replica-of this is a read-only replica of a directory another
		// process owns — the immutable store files make that free.
		var err error
		crd, err = coord.Open(staticDB, *replicas, store.Options{})
		if err != nil {
			return err
		}
		crd.Limits = limits
		crd.Hedge = *hedge
		crd.ReadOnly = *replicaOf != ""
		if m, err := delta.LoadManifest(staticDB); err == nil {
			crd.SetEpoch(m.Epoch, lastJournalSummary(staticDB))
		}
		eng = crd.Engine()
		eng.QueryLimits = limits
		srv = server.New(eng)
		srv.Coord = crd
	} else {
		var err error
		eng, err = openDB(staticDB)
		if err != nil {
			return err
		}
		eng.QueryLimits = limits
		// A static store may still carry update history; surface it.
		if m, err := delta.LoadManifest(staticDB); err == nil {
			eng.SetEpoch(m.Epoch, lastJournalSummary(staticDB))
		}
		srv = server.New(eng)
	}
	if crd != nil {
		// Closing the coordinator closes every replica set and the view
		// engine with it.
		defer crd.Close()
	} else {
		defer eng.Close()
	}
	// The query cache is installed before the listener opens: repeated
	// queries skip parsing and execution, and concurrent identical
	// queries coalesce into one executor slot. `frappe query` (one-shot
	// CLI) never installs a cache.
	if *qcacheMB > 0 {
		qc := qcache.New(qcache.Config{
			MaxBytes:   int64(*qcacheMB) << 20,
			MaxEntries: *qcacheEntries,
		})
		if crd != nil {
			crd.SetQueryCache(qc)
		} else {
			eng.SetQueryCache(qc)
		}
	}
	srv.QueryTimeout = *queryTimeout
	srv.MaxConcurrent = *maxConcurrent
	srv.MaxBodyBytes = *maxBodyBytes
	if *slowMS < 0 {
		srv.SlowThreshold = -1
	} else if *slowMS > 0 {
		srv.SlowThreshold = time.Duration(*slowMS) * time.Millisecond
	}
	if *pprofOn {
		srv.EnablePprof()
		fmt.Printf("frappe: pprof enabled at http://%s/debug/pprof/\n", *addr)
	}

	srv.Logger = logger
	obs.RegisterRuntime(version)

	// Request tracing: a lock-striped ring of recent traces with
	// tail-based sampling. Slow requests use the same threshold the slow
	// log uses, so every "slow request" log line has a retained trace.
	if *traceSample >= 0 {
		if *traceSample > 1 {
			return fmt.Errorf("serve: -trace-sample must be in [0,1], got %v", *traceSample)
		}
		cfg := trace.Config{
			Capacity:      256,
			SampleRate:    *traceSample,
			SlowThreshold: server.DefaultSlowThreshold,
		}
		if srv.SlowThreshold > 0 {
			cfg.SlowThreshold = srv.SlowThreshold
		}
		if *traceExport != "" {
			exp, err := trace.NewExporter(*traceExport, trace.DefaultExportMaxBytes)
			if err != nil {
				return fmt.Errorf("serve: -trace-export: %w", err)
			}
			defer exp.Close()
			cfg.Export = exp
		}
		srv.Tracer = trace.New(cfg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	nShards := 0
	if crd != nil {
		nShards = crd.Shards()
		fmt.Printf("frappe: coordinator over %d shards, %d replica(s), hedge %v\n", nShards, crd.Replicas(), *hedge)
	}
	fmt.Printf("frappe: serving %s on http://%s (SIGTERM drains for up to %v)\n", staticDB, ln.Addr(), *drain)
	// The startup line also goes to the structured sink, so log
	// pipelines see the process come up in the same stream as its
	// requests.
	srv.Logger.Info("serving", "db", staticDB, "addr", ln.Addr().String(),
		"version", version, "epoch", eng.Snapshot().Epoch(),
		"shards", nShards,
		"tracing", srv.Tracer != nil, "logFormat", *logFormat)
	if err := server.Serve(ctx, ln, srv, *drain); err != nil {
		return err
	}
	fmt.Println("frappe: drained, bye")
	return nil
}

func cmdMap(args []string) error {
	fl := flag.NewFlagSet("map", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	out := fl.String("out", "codemap.svg", "output SVG path")
	highlight := fl.String("highlight", "", "function whose backward slice to highlight")
	width := fl.Int("width", 1280, "map width")
	height := fl.Int("height", 900, "map height")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	m := codemap.Build(eng.Source())
	opts := codemap.RenderOptions{Width: float64(*width), Height: float64(*height), Title: "Frappé code map"}
	if *highlight != "" {
		id, err := eng.MustLookupOne(*highlight, model.NodeFunction)
		if err != nil {
			return err
		}
		opts.Highlight = traversal.TransitiveClosure(eng.Source(), id, traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCalls),
		})
		opts.Highlight = append(opts.Highlight, id)
		opts.Title = fmt.Sprintf("Backward slice of %s", *highlight)
	}
	svg := m.SVG(opts)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
	return nil
}
