// Command frappe is the Frappé CLI: index a codebase into a graph store,
// then run the paper's use cases against it — Cypher queries, code
// search, go-to-definition, find-references, program slices, statistics
// and code-map rendering.
//
//	frappe index   -gen [-scale N] -db DIR        index the synthetic kernel
//	frappe index   -src DIR [-cc-log FILE] -db DIR  index a real C tree
//	frappe query   -db DIR 'CYPHER...'            run a Cypher query
//	frappe search  -db DIR -pattern P [-type T] [-module M] [-dir D]
//	frappe def     -db DIR -name N -file F -line L -col C
//	frappe refs    -db DIR -name N [-type T]
//	frappe slice   -db DIR -fn NAME [-forward] [-depth N]
//	frappe stats   -db DIR
//	frappe map     -db DIR -out FILE.svg [-highlight NAME]
//	frappe verify  -db DIR                        fsck a store directory
//	frappe serve   -db DIR [-addr HOST:PORT] [-max-concurrent N] ...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"frappe/internal/codemap"
	"frappe/internal/core"
	"frappe/internal/cpp"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/query"
	"frappe/internal/server"
	"frappe/internal/store"
	"frappe/internal/traversal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "index":
		err = cmdIndex(args)
	case "query":
		err = cmdQuery(args)
	case "search":
		err = cmdSearch(args)
	case "def":
		err = cmdDef(args)
	case "refs":
		err = cmdRefs(args)
	case "slice":
		err = cmdSlice(args)
	case "stats":
		err = cmdStats(args)
	case "map":
		err = cmdMap(args)
	case "verify":
		err = cmdVerify(args)
	case "serve":
		err = cmdServe(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "frappe: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "frappe: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: frappe <command> [flags]

commands:
  index    build a graph store from source (or the synthetic kernel)
  query    run a Cypher query against a store
  search   code search by name/type/module/directory
  def      go to definition of a symbol reference
  refs     find references to a symbol
  slice    backward/forward program slice over the call graph
  stats    graph metrics and degree hubs
  map      render the cartographic code map as SVG
  verify   check a store's checksums and structure (fsck)
  serve    HTTP API + query console over a store
`)
}

func openDB(db string) (*core.Engine, error) {
	if db == "" {
		return nil, fmt.Errorf("missing -db")
	}
	return core.Open(db)
}

func cmdIndex(args []string) error {
	fl := flag.NewFlagSet("index", flag.ExitOnError)
	gen := fl.Bool("gen", false, "index the synthetic Linux-shaped kernel instead of real sources")
	scale := fl.Int("scale", 1, "synthetic kernel scale factor")
	src := fl.String("src", "", "source tree root (real-code mode)")
	ccLog := fl.String("cc-log", "", "frappe-cc build capture (JSON lines); default: compile every .c and link one module")
	includes := fl.String("I", "include", "comma-separated include paths (relative to -src)")
	db := fl.String("db", "frappe.db", "output store directory")
	fl.Parse(args)

	var build extract.Build
	var opts extract.Options
	start := time.Now()
	switch {
	case *gen:
		w := kernelgen.Generate(kernelgen.Scaled(*scale))
		build, opts = w.Build, w.ExtractOptions()
		fmt.Printf("generated synthetic kernel: %d files, %d lines\n", len(w.FS), w.LineCount())
	case *src != "":
		fsys := cpp.DirFS{Root: *src}
		opts = extract.Options{FS: fsys, IncludePaths: strings.Split(*includes, ",")}
		var err error
		build, err = buildFromTree(*src, *ccLog)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("index needs -gen or -src")
	}

	eng, errs, err := core.Index(build, opts)
	if err != nil {
		return err
	}
	for i, e := range errs {
		if i >= 10 {
			fmt.Fprintf(os.Stderr, "... and %d more diagnostics\n", len(errs)-10)
			break
		}
		fmt.Fprintf(os.Stderr, "warning: %v\n", e)
	}
	if err := eng.Save(*db); err != nil {
		return err
	}
	m := eng.Stats()
	fmt.Printf("indexed in %v: %d nodes, %d edges (%.2f edges/node) -> %s\n",
		time.Since(start).Round(time.Millisecond), m.Nodes, m.Edges, m.Density, *db)
	return nil
}

// ccRecord is one line of a frappe-cc capture.
type ccRecord struct {
	Kind    string   `json:"kind"` // "compile" | "link"
	Source  string   `json:"source,omitempty"`
	Object  string   `json:"object,omitempty"`
	Output  string   `json:"output,omitempty"`
	Objects []string `json:"objects,omitempty"`
	Libs    []string `json:"libs,omitempty"`
}

func buildFromTree(root, ccLog string) (extract.Build, error) {
	var build extract.Build
	if ccLog != "" {
		f, err := os.Open(ccLog)
		if err != nil {
			return build, err
		}
		defer f.Close()
		dec := json.NewDecoder(f)
		for dec.More() {
			var r ccRecord
			if err := dec.Decode(&r); err != nil {
				return build, fmt.Errorf("cc-log: %w", err)
			}
			switch r.Kind {
			case "compile":
				build.Units = append(build.Units, extract.CompileUnit{Source: r.Source, Object: r.Object})
			case "link":
				build.Modules = append(build.Modules, extract.Module{Name: r.Output, Objects: r.Objects, Libs: r.Libs})
			}
		}
		return build, nil
	}
	// No capture: compile every .c under root, link everything into one
	// module named after the directory.
	var objects []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".c") {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		obj := strings.TrimSuffix(rel, ".c") + ".o"
		build.Units = append(build.Units, extract.CompileUnit{Source: rel, Object: obj})
		objects = append(objects, obj)
		return nil
	})
	if err != nil {
		return build, err
	}
	if len(build.Units) == 0 {
		return build, fmt.Errorf("no .c files under %s", root)
	}
	build.Modules = []extract.Module{{Name: filepath.Base(root) + ".elf", Objects: objects}}
	return build, nil
}

func cmdQuery(args []string) error {
	fl := flag.NewFlagSet("query", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	timeout := fl.Duration("timeout", 30*time.Second, "query deadline")
	maxRows := fl.Int("max-rows", 0, "row budget (0 = unlimited)")
	maxSteps := fl.Int64("max-steps", 0, "pattern-expansion budget (0 = unlimited)")
	fl.Parse(args)
	if fl.NArg() != 1 {
		return fmt.Errorf("query needs exactly one Cypher string argument")
	}
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	eng.QueryLimits = query.Limits{MaxRows: *maxRows, MaxSteps: *maxSteps}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	res, err := eng.Query(ctx, fl.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(res.Format(eng.Source()))
	fmt.Printf("%d rows in %v\n", res.Count(), time.Since(start).Round(time.Microsecond))
	return nil
}

func cmdSearch(args []string) error {
	fl := flag.NewFlagSet("search", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	pattern := fl.String("pattern", "", "SHORT_NAME pattern (* and ? wildcards)")
	typ := fl.String("type", "", "node type filter (function, struct, macro, ...)")
	module := fl.String("module", "", "restrict to a module (Figure 3)")
	dir := fl.String("dir", "", "restrict to a directory")
	limit := fl.Int("limit", 50, "max results")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	opts := core.SearchOptions{Pattern: *pattern, Module: *module, Dir: *dir, Limit: *limit}
	if *typ != "" {
		opts.Types = []model.NodeType{model.NodeType(*typ)}
	}
	syms, err := eng.Search(context.Background(), opts)
	if err != nil {
		return err
	}
	for _, s := range syms {
		fmt.Println(core.FormatSymbol(s))
	}
	fmt.Printf("%d results\n", len(syms))
	return nil
}

func cmdDef(args []string) error {
	fl := flag.NewFlagSet("def", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	name := fl.String("name", "", "symbol under the cursor")
	file := fl.String("file", "", "file of the reference")
	line := fl.Int("line", 0, "line of the reference")
	col := fl.Int("col", 0, "column of the reference")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	sym, ok, err := eng.GoToDefinition(context.Background(), *name, *file, *line, *col)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Println("no definition found at that position")
		return nil
	}
	fmt.Println(core.FormatSymbol(sym))
	return nil
}

func cmdRefs(args []string) error {
	fl := flag.NewFlagSet("refs", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	name := fl.String("name", "", "symbol name")
	typ := fl.String("type", "", "node type disambiguator")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	id, err := eng.MustLookupOne(*name, model.NodeType(*typ))
	if err != nil {
		return err
	}
	refs, err := eng.FindReferences(context.Background(), id)
	if err != nil {
		return err
	}
	for _, r := range refs {
		fmt.Printf("%-22s %s:%d:%d  (from %s)\n", r.Kind, r.File, r.Line, r.Col, r.From.ShortName)
	}
	fmt.Printf("%d references\n", len(refs))
	return nil
}

func cmdSlice(args []string) error {
	fl := flag.NewFlagSet("slice", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	fn := fl.String("fn", "", "seed function")
	forward := fl.Bool("forward", false, "forward slice (callers) instead of backward (callees)")
	depth := fl.Int("depth", 0, "max depth (0 = unbounded)")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	id, err := eng.MustLookupOne(*fn, model.NodeFunction)
	if err != nil {
		return err
	}
	var syms []core.Symbol
	if *forward {
		syms = eng.ForwardSlice(id, *depth)
	} else {
		syms = eng.BackwardSlice(id, *depth)
	}
	for _, s := range syms {
		fmt.Println(core.FormatSymbol(s))
	}
	fmt.Printf("%d functions in slice\n", len(syms))
	return nil
}

func cmdStats(args []string) error {
	fl := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	top := fl.Int("top", 10, "top-degree nodes to list")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	m := eng.Stats()
	fmt.Printf("nodes: %d\nedges: %d\ndensity: %.2f edges/node\n", m.Nodes, m.Edges, m.Density)
	fmt.Println("\ntop-degree nodes (Figure 7 hubs):")
	for _, h := range graph.TopDegreeNodes(eng.Source(), *top) {
		fmt.Printf("  %-14s %-24s degree %d\n", h.Type, h.Name, h.Degree)
	}
	return nil
}

func cmdVerify(args []string) error {
	fl := flag.NewFlagSet("verify", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	quiet := fl.Bool("q", false, "print problems only")
	fl.Parse(args)
	if *db == "" {
		return fmt.Errorf("missing -db")
	}
	rep, err := store.Verify(*db)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("store %s: format v%d, %d nodes, %d edges\n", rep.Dir, rep.FormatVersion, rep.Nodes, rep.Edges)
		for _, fc := range rep.Files {
			status := "ok"
			if !fc.OK {
				status = "CORRUPT"
			}
			fmt.Printf("  %-34s %10d bytes  %5d chunks  %s\n", fc.Name, fc.Bytes, fc.Chunks, status)
		}
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(os.Stderr, "problem: %v\n", p)
	}
	if !rep.OK() {
		return fmt.Errorf("%d problem(s) found in %s", len(rep.Problems), *db)
	}
	if !*quiet {
		fmt.Println("store is clean")
	}
	return nil
}

func cmdServe(args []string) error {
	fl := flag.NewFlagSet("serve", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	addr := fl.String("addr", "127.0.0.1:7474", "listen address")
	queryTimeout := fl.Duration("query-timeout", 30*time.Second, "per-query deadline")
	maxConcurrent := fl.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests before shedding with 503 (<0 disables)")
	maxRows := fl.Int("max-rows", 1_000_000, "per-query row budget (0 = unlimited)")
	maxSteps := fl.Int64("max-steps", 50_000_000, "per-query pattern-expansion budget (0 = unlimited)")
	drain := fl.Duration("drain-timeout", server.DefaultDrainTimeout, "max time to drain in-flight requests on shutdown")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	eng.QueryLimits = query.Limits{MaxRows: *maxRows, MaxSteps: *maxSteps}

	srv := server.New(eng)
	srv.QueryTimeout = *queryTimeout
	srv.MaxConcurrent = *maxConcurrent

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("frappe: serving %s on http://%s (SIGTERM drains for up to %v)\n", *db, ln.Addr(), *drain)
	if err := server.Serve(ctx, ln, srv, *drain); err != nil {
		return err
	}
	fmt.Println("frappe: drained, bye")
	return nil
}

func cmdMap(args []string) error {
	fl := flag.NewFlagSet("map", flag.ExitOnError)
	db := fl.String("db", "frappe.db", "store directory")
	out := fl.String("out", "codemap.svg", "output SVG path")
	highlight := fl.String("highlight", "", "function whose backward slice to highlight")
	width := fl.Int("width", 1280, "map width")
	height := fl.Int("height", 900, "map height")
	fl.Parse(args)
	eng, err := openDB(*db)
	if err != nil {
		return err
	}
	defer eng.Close()
	m := codemap.Build(eng.Source())
	opts := codemap.RenderOptions{Width: float64(*width), Height: float64(*height), Title: "Frappé code map"}
	if *highlight != "" {
		id, err := eng.MustLookupOne(*highlight, model.NodeFunction)
		if err != nil {
			return err
		}
		opts.Highlight = traversal.TransitiveClosure(eng.Source(), id, traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCalls),
		})
		opts.Highlight = append(opts.Highlight, id)
		opts.Title = fmt.Sprintf("Backward slice of %s", *highlight)
	}
	svg := m.SVG(opts)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
	return nil
}
