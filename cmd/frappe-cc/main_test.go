package main

import (
	"reflect"
	"testing"
)

func TestParseCompile(t *testing.T) {
	recs, err := parseArgs([]string{"-O2", "-Iinclude", "-DDEBUG=1", "-c", "drivers/scsi/sr.c", "-o", "drivers/scsi/sr.o"})
	if err != nil {
		t.Fatal(err)
	}
	want := []record{{Kind: "compile", Source: "drivers/scsi/sr.c", Object: "drivers/scsi/sr.o"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestParseCompileDefaultObject(t *testing.T) {
	recs, err := parseArgs([]string{"-c", "foo.c"})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Object != "foo.o" {
		t.Fatalf("object = %q", recs[0].Object)
	}
}

func TestParseLink(t *testing.T) {
	recs, err := parseArgs([]string{"-o", "prog", "main.o", "foo.o", "-lm", "util.a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != "link" {
		t.Fatalf("recs = %+v", recs)
	}
	r := recs[0]
	if r.Output != "prog" || !reflect.DeepEqual(r.Objects, []string{"main.o", "foo.o"}) {
		t.Fatalf("link = %+v", r)
	}
	if !reflect.DeepEqual(r.Libs, []string{"libm", "util.a"}) {
		t.Fatalf("libs = %+v", r.Libs)
	}
}

func TestParseFigure2MixedLink(t *testing.T) {
	// The paper's `gcc main.c foo.o -o prog`.
	recs, err := parseArgs([]string{"main.c", "foo.o", "-o", "prog"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Kind != "compile" || recs[0].Source != "main.c" || recs[0].Object != "main.o" {
		t.Fatalf("implicit compile = %+v", recs[0])
	}
	link := recs[1]
	if link.Kind != "link" || link.Output != "prog" {
		t.Fatalf("link = %+v", link)
	}
	if !reflect.DeepEqual(link.Objects, []string{"foo.o", "main.o"}) {
		t.Fatalf("link objects = %+v", link.Objects)
	}
}

func TestParseNothingToRecord(t *testing.T) {
	recs, err := parseArgs([]string{"--version"})
	if err != nil || recs != nil {
		t.Fatalf("recs = %+v, err = %v", recs, err)
	}
}

func TestParseMultiSourceCompileRejected(t *testing.T) {
	if _, err := parseArgs([]string{"-c", "a.c", "b.c"}); err == nil {
		t.Fatal("want error")
	}
}

func TestSeparateOperandFlags(t *testing.T) {
	recs, err := parseArgs([]string{"-I", "include", "-D", "X=1", "-c", "a.c", "-o", "a.o"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Source != "a.c" {
		t.Fatalf("recs = %+v", recs)
	}
}
