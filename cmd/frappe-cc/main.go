// Command frappe-cc is the compiler-wrapper half of Frappé's extractor
// integration (§2 of the paper): a drop-in replacement for cc/gcc/clang
// command lines that records what the build does, so `frappe index
// -cc-log` can replay it through the extractor. The paper's wrappers
// also exec the native compiler; set FRAPPE_CC_PASSTHROUGH to a compiler
// path to do the same here.
//
// Usage (as a CC substitute):
//
//	FRAPPE_CC_LOG=build.json frappe-cc -c foo.c -o foo.o
//	FRAPPE_CC_LOG=build.json frappe-cc -o prog main.o foo.o -lm
//
// Every invocation appends one JSON record to $FRAPPE_CC_LOG:
//
//	{"kind":"compile","source":"foo.c","object":"foo.o"}
//	{"kind":"link","output":"prog","objects":["main.o","foo.o"],"libs":["libm"]}
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

type record struct {
	Kind    string   `json:"kind"`
	Source  string   `json:"source,omitempty"`
	Object  string   `json:"object,omitempty"`
	Output  string   `json:"output,omitempty"`
	Objects []string `json:"objects,omitempty"`
	Libs    []string `json:"libs,omitempty"`
}

func main() {
	recs, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "frappe-cc: %v\n", err)
		os.Exit(2)
	}
	logPath := os.Getenv("FRAPPE_CC_LOG")
	if logPath == "" {
		logPath = "frappe-cc.json"
	}
	for _, rec := range recs {
		if err := appendRecord(logPath, rec); err != nil {
			fmt.Fprintf(os.Stderr, "frappe-cc: %v\n", err)
			os.Exit(1)
		}
	}
	// Optionally exec the real compiler so the build still produces
	// artifacts (the paper's wrappers always do).
	if cc := os.Getenv("FRAPPE_CC_PASSTHROUGH"); cc != "" {
		cmd := exec.Command(cc, os.Args[1:]...)
		cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
		if err := cmd.Run(); err != nil {
			if xe, ok := err.(*exec.ExitError); ok {
				os.Exit(xe.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "frappe-cc: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseArgs classifies a cc-style command line as a compile, a link, or
// (for `cc main.c foo.o -o prog`) implicit compiles plus a link.
func parseArgs(args []string) ([]record, error) {
	var (
		compile bool
		output  string
		sources []string
		objects []string
		libs    []string
	)
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-c":
			compile = true
		case a == "-o" && i+1 < len(args):
			i++
			output = args[i]
		case strings.HasPrefix(a, "-l"):
			libs = append(libs, "lib"+strings.TrimPrefix(a, "-l"))
		case strings.HasPrefix(a, "-"):
			// Flags (-O2, -I..., -D..., -W...) are irrelevant to the
			// dependency capture; -I/-D with separate operands consume it.
			if (a == "-I" || a == "-D" || a == "-include" || a == "-MF") && i+1 < len(args) {
				i++
			}
		case strings.HasSuffix(a, ".c"):
			sources = append(sources, a)
		case strings.HasSuffix(a, ".o") || strings.HasSuffix(a, ".a"):
			if strings.HasSuffix(a, ".a") {
				libs = append(libs, a)
			} else {
				objects = append(objects, a)
			}
		}
	}
	switch {
	case compile && len(sources) == 1:
		obj := output
		if obj == "" {
			obj = strings.TrimSuffix(sources[0], ".c") + ".o"
		}
		return []record{{Kind: "compile", Source: sources[0], Object: obj}}, nil
	case compile && len(sources) > 1:
		return nil, fmt.Errorf("-c with %d sources; one at a time", len(sources))
	case len(objects) > 0 || len(sources) > 0:
		if output == "" {
			output = "a.out"
		}
		// Direct source-to-binary invocations imply per-source compiles
		// before the link, as in the paper's Figure 2
		// (`gcc main.c foo.o -o prog`).
		var recs []record
		link := record{Kind: "link", Output: output, Objects: objects, Libs: libs}
		for _, s := range sources {
			obj := strings.TrimSuffix(s, ".c") + ".o"
			recs = append(recs, record{Kind: "compile", Source: s, Object: obj})
			link.Objects = append(link.Objects, obj)
		}
		return append(recs, link), nil
	}
	return nil, nil // e.g. `frappe-cc --version`: nothing to record
}

func appendRecord(path string, rec record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	return enc.Encode(rec)
}
