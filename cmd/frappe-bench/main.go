// Command frappe-bench regenerates every table and figure of the
// paper's evaluation (§5) against the synthetic kernel, using the
// paper's own protocol for Table 5: each query runs ten times with a
// cold page cache and ten times warm, reporting min/avg/max and the
// result count.
//
//	frappe-bench                      # all experiments at default scale
//	frappe-bench -experiment table5   # one experiment
//	frappe-bench -scale 4             # larger synthetic kernel
//	frappe-bench -runs 10 -timeout 15s
//
// -experiment soak drives mixed traffic (concurrent query clients, a
// live admin updater, a metrics scraper) through the full HTTP stack,
// once unsharded and once through the shard coordinator; -soak-p99
// turns it into a gate that fails on any 5xx or a query p99 above the
// ceiling.
//
// With -compare it acts as the CI regression gate instead: it reads two
// smoke JSON files and fails when a tracked metric (warm-read
// throughput, cache hit ratios, query-cache speedup, planned Figure-6
// closure throughput) regressed beyond the tolerance, or when the
// uncached planned closure exceeds its absolute wall-clock budget.
//
//	frappe-bench -compare old.json new.json -tolerance 0.25
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/coord"
	"frappe/internal/core"
	"frappe/internal/delta"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/obs"
	"frappe/internal/obs/trace"
	"frappe/internal/plan"
	"frappe/internal/qcache"
	"frappe/internal/query"
	"frappe/internal/server"
	"frappe/internal/shard"
	"frappe/internal/store"
	"frappe/internal/temporal"
	"frappe/internal/traversal"
)

var (
	scale      = flag.Int("scale", 1, "synthetic kernel scale factor")
	runs       = flag.Int("runs", 10, "cold and warm runs per query (paper: 10)")
	timeout    = flag.Duration("timeout", 15*time.Second, "comprehension-query abort deadline (paper: 15 min)")
	experiment = flag.String("experiment", "all", "comma list: table3,table4,table5,figure7,table6,ablations,temporal,planner,stream,obs,smoke,soak")
	keep       = flag.String("db", "", "store directory to (re)use; default: temp dir")
	out        = flag.String("out", "", "with -experiment smoke/planner: also write the results as JSON to this file")
	compare    = flag.Bool("compare", false, "regression gate: compare two smoke JSON files instead of benchmarking")
	tolerance  = flag.Float64("tolerance", 0.25, "with -compare: allowed relative regression per metric")
	soakDur    = flag.Duration("soak-duration", 3*time.Second, "with -experiment soak: mixed-traffic duration per serving mode")
	soakP99    = flag.Duration("soak-p99", 0, "with -experiment soak: fail when a mode's query p99 exceeds this or any request got a 5xx (0 = report only)")
)

func main() {
	flag.Parse()
	if *compare {
		if err := runCompare(flag.Args(), *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "frappe-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "frappe-bench: %v\n", err)
		os.Exit(1)
	}
}

type bench struct {
	workload *kernelgen.Workload
	mem      *core.Engine
	disk     *core.Engine
	dbDir    string
	genTime  time.Duration
	extTime  time.Duration
	saveTime time.Duration
}

func run() error {
	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	b, err := setup()
	if err != nil {
		return err
	}
	defer b.disk.Close()

	if all || want["table3"] {
		b.table3()
	}
	if all || want["table4"] {
		if err := b.table4(); err != nil {
			return err
		}
	}
	if all || want["table5"] {
		if err := b.table5(); err != nil {
			return err
		}
	}
	if all || want["figure7"] {
		b.figure7()
	}
	if all || want["table6"] {
		if err := b.table6(); err != nil {
			return err
		}
	}
	if all || want["ablations"] {
		if err := b.ablations(); err != nil {
			return err
		}
	}
	if all || want["temporal"] {
		if err := b.temporal(); err != nil {
			return err
		}
	}
	// The smoke and planner experiments share one JSON record (*out):
	// smoke runs only on request (it records PR-3 speedup evidence, not
	// the paper), while planner is part of the default sweep because it
	// reproduces the Figure-6 comprehension story.
	var sr smokeResult
	record := false
	if want["smoke"] {
		if err := b.smoke(&sr); err != nil {
			return err
		}
		record = true
	}
	if all || want["planner"] {
		if err := b.planner(&sr); err != nil {
			return err
		}
		record = true
	}
	if all || want["obs"] {
		if err := b.traceOverhead(&sr); err != nil {
			return err
		}
		record = true
	}
	// soak builds its own serving stacks (it never touches b), so it can
	// run here without keeping b.mem live through stream's heap baseline.
	if want["soak"] {
		if err := runSoak(&sr); err != nil {
			return err
		}
		record = true
	}
	// stream must stay the last dispatch that references b: its peak-heap
	// measurement GCs a baseline and reads the delta, and any later use of
	// b keeps b.mem (the ~20MB in-memory engine) statically live through
	// the measurement, which shifts GC pacing and inflates the observed
	// peak by roughly that much.
	if all || want["stream"] {
		if err := b.stream(&sr); err != nil {
			return err
		}
		record = true
	}
	if record && *out != "" {
		buf, err := json.MarshalIndent(sr, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func setup() (*bench, error) {
	b := &bench{}
	start := time.Now()
	b.workload = kernelgen.Generate(kernelgen.Scaled(*scale))
	b.genTime = time.Since(start)

	start = time.Now()
	eng, errs, err := core.Index(b.workload.Build, b.workload.ExtractOptions())
	if err != nil {
		return nil, err
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("extraction diagnostics: %v", errs[0])
	}
	b.extTime = time.Since(start)
	b.mem = eng

	b.dbDir = *keep
	if b.dbDir == "" {
		dir, err := os.MkdirTemp("", "frappe-bench-")
		if err != nil {
			return nil, err
		}
		b.dbDir = filepath.Join(dir, "db")
	}
	start = time.Now()
	if err := eng.Save(b.dbDir); err != nil {
		return nil, err
	}
	b.saveTime = time.Since(start)
	disk, err := core.Open(b.dbDir)
	if err != nil {
		return nil, err
	}
	b.disk = disk

	fmt.Printf("== Setup ==\n")
	fmt.Printf("synthetic kernel: scale %d, %d files, %d lines of C\n",
		*scale, len(b.workload.FS), b.workload.LineCount())
	fmt.Printf("generate %v | extract %v | persist %v -> %s\n\n",
		b.genTime.Round(time.Millisecond), b.extTime.Round(time.Millisecond),
		b.saveTime.Round(time.Millisecond), b.dbDir)
	return b, nil
}

// --- Table 3 ---

func (b *bench) table3() {
	m := b.mem.Stats()
	fmt.Println("== Table 3: Graph metrics ==")
	fmt.Printf("%-12s %-12s %-10s\n", "Node count", "Edge count", "Density")
	fmt.Printf("%-12d %-12d 1:%.1f\n\n", m.Nodes, m.Edges, m.Density)
}

// --- Table 4 ---

func (b *bench) table4() error {
	s, err := store.Sizes(b.dbDir)
	if err != nil {
		return err
	}
	fmt.Println("== Table 4: Database size (MB) ==")
	fmt.Printf("%-12s %-8s %-14s %-9s %-8s\n", "Properties", "Nodes", "Relationships", "Indexes", "Total")
	fmt.Printf("%-12.2f %-8.2f %-14.2f %-9.2f %-8.2f\n\n",
		store.MB(s.Properties), store.MB(s.Nodes), store.MB(s.Relationships),
		store.MB(s.Indexes), store.MB(s.Total))
	return nil
}

// --- Table 5 ---

type timing struct {
	min, max, total time.Duration
	n               int
}

func (t *timing) add(d time.Duration) {
	if t.n == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.total += d
	t.n++
}

func (t *timing) avg() time.Duration {
	if t.n == 0 {
		return 0
	}
	return t.total / time.Duration(t.n)
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

func (b *bench) runQuery(text string, cold bool) (timing, int, error) {
	var t timing
	count := 0
	for i := 0; i < *runs; i++ {
		if cold {
			b.disk.DropCaches()
		}
		start := time.Now()
		res, err := b.disk.Query(context.Background(), text)
		if err != nil {
			return t, 0, err
		}
		t.add(time.Since(start))
		count = res.Count()
	}
	return t, count, nil
}

func (b *bench) table5() error {
	fig4 := b.figure4Query()
	fmt.Println("== Table 5: Query performance (ms, cold/warm over", *runs, "runs) ==")
	fmt.Printf("%-22s %-12s %-12s %-12s %-12s\n", "Use case", "Min", "Avg", "Max", "Result count")

	cases := []struct {
		name string
		text string
	}{
		{"Code search (Fig.3)", figure3Query},
		{"X-referencing (Fig.4)", fig4},
		{"Debugging (Fig.5)", figure5Query},
	}
	for _, c := range cases {
		coldT, count, err := b.runQuery(c.text, true)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		warmT, _, err := b.runQuery(c.text, false)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-12s %-12s %-12s %d\n", c.name,
			ms(coldT.min)+" / "+ms(warmT.min),
			ms(coldT.avg())+" / "+ms(warmT.avg()),
			ms(coldT.max)+" / "+ms(warmT.max),
			count)
	}

	// Comprehension via Cypher: expected to blow up; abort at -timeout.
	// The engine's query path now runs through the cost-based planner,
	// which rewrites this closure to a visited-set traversal, so the
	// naive baseline calls the tree-walk interpreter directly.
	b.disk.DropCaches()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	start := time.Now()
	_, err := query.RunLimits(ctx, b.disk.Source(), figure6Query, query.Limits{})
	cancel()
	if err != nil {
		fmt.Printf("%-22s > %v, aborted (Cypher path enumeration)\n", "Comprehension (Fig.6)", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("%-22s completed in %v (graph too small to explode)\n", "Comprehension (Fig.6)", time.Since(start).Round(time.Millisecond))
	}

	// The same Cypher through the engine: the planner lowers the
	// unbounded closure to the traversal API's visited-set walk.
	plannedT, plannedN, err := b.runQuery(figure6Query, false)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %s ms avg, %d results (planned: closure rewrite)\n",
		"  ... planned", ms(plannedT.avg()), plannedN)

	// The paper's footnote: the same closure via the embedded API.
	ids, err := b.disk.Source().Lookup("TYPE: function AND short_name: pci_read_bases")
	if err != nil || len(ids) == 0 {
		return fmt.Errorf("pci_read_bases lookup failed")
	}
	var t timing
	n := 0
	for i := 0; i < *runs; i++ {
		start := time.Now()
		closure := traversal.TransitiveClosure(b.disk.Source(), ids[0], traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCalls),
		})
		t.add(time.Since(start))
		n = len(closure)
	}
	fmt.Printf("%-22s %s ms avg, %d results (embedded traversal API)\n\n",
		"  ... embedded", ms(t.avg()), n)
	return nil
}

// planner is the PR-7 acceptance measurement: the Figure-6 closure
// naive vs planned. The naive interpreter enumerates simple paths and
// blows its step budget on any graph with real fan-out; the planner
// rewrites the same query to a visited-set traversal and answers in
// milliseconds. Neither path touches the query-result cache.
func (b *bench) planner(r *smokeResult) error {
	fmt.Println("== Planner: Fig.6 closure, naive vs planned (uncached) ==")
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	src := b.disk.Source()
	q, err := query.Parse(figure6Query)
	if err != nil {
		return err
	}

	// Naive: step-budgeted so the benchmark itself stays bounded; the
	// -timeout deadline is the backstop.
	const naiveBudget = 5_000_000
	r.Planner.NaiveBudgetSteps = naiveBudget
	b.disk.DropCaches()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	start := time.Now()
	_, nerr := query.ExecuteLimits(ctx, src, q, query.Limits{MaxSteps: naiveBudget})
	cancel()
	naive := time.Since(start)
	r.Planner.NaiveMS = float64(naive.Microseconds()) / 1000
	switch {
	case nerr == nil:
		fmt.Printf("naive interpreter: completed in %s ms (graph too small to explode)\n", ms(naive))
	case errors.Is(nerr, query.ErrBudgetExceeded) || errors.Is(nerr, context.DeadlineExceeded):
		r.Planner.NaiveAborted = true
		fmt.Printf("naive interpreter: aborted after %s ms (%v)\n", ms(naive), nerr)
	default:
		return fmt.Errorf("naive figure-6: %w", nerr)
	}

	// Planned, cold: page cache dropped, plan compiled from scratch,
	// same step budget the naive run died under.
	lim := query.Limits{MaxSteps: naiveBudget}
	b.disk.DropCaches()
	start = time.Now()
	p := plan.Compile(q, b.disk.GraphStats())
	res, perr := p.Execute(context.Background(), src, lim)
	if perr != nil {
		return fmt.Errorf("planned figure-6: %w", perr)
	}
	cold := time.Since(start)

	// Planned, warm: recompiled every run so the number reflects the
	// full uncached path (cost model + rewrite + execution).
	var warm timing
	for i := 0; i < *runs; i++ {
		start = time.Now()
		pw := plan.Compile(q, b.disk.GraphStats())
		if _, err := pw.Execute(context.Background(), src, lim); err != nil {
			return fmt.Errorf("planned figure-6 (warm): %w", err)
		}
		warm.add(time.Since(start))
	}

	r.Planner.PlannedColdMS = float64(cold.Microseconds()) / 1000
	r.Planner.PlannedWarmMS = float64(warm.avg().Microseconds()) / 1000
	r.Planner.Rows = res.Count()
	r.Planner.Rewrites = p.Rewrites
	if r.Planner.PlannedWarmMS > 0 {
		r.Planner.Speedup = r.Planner.NaiveMS / r.Planner.PlannedWarmMS
	}
	bound := ""
	if r.Planner.NaiveAborted {
		bound = ">= " // the naive run never finished; the ratio is a floor
	}
	fmt.Printf("planned (closure rewrite x%d): cold %s ms, warm %s ms avg, %d rows (%s%.0fx vs naive)\n\n",
		p.Rewrites, ms(cold), ms(warm.avg()), res.Count(), bound, r.Planner.Speedup)
	return nil
}

// --- Streaming (PR 8) ---

// streamBulkQuery enumerates every call edge with caller and callee
// names: the largest result the synthetic kernel produces without
// DISTINCT, so the materialized response grows with the row count while
// the streamed path holds only the channel window.
const streamBulkQuery = `
MATCH (f:function) -[:calls]-> (g:function)
RETURN f.short_name, g.short_name`

// peakHeap runs f while sampling the live heap every couple of
// milliseconds, returning the peak HeapAlloc delta over a GC'd
// baseline. Engine-held memory (page caches, the graph) is in the
// baseline and cancels out; what remains is what f itself kept live.
func peakHeap(f func() error) (int64, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if d := int64(ms.HeapAlloc) - int64(base.HeapAlloc); d > peak {
				peak = d
			}
			select {
			case <-stop:
				return // one final sample taken above before exiting
			case <-tick.C:
			}
		}
	}()
	err := f()
	close(stop)
	<-done
	return peak, err
}

// rowDigest hashes one formatted row, order- and byte-sensitive.
func rowDigest(h hash.Hash64, cells []string) {
	for _, c := range cells {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	h.Write([]byte{'\n'})
}

// materializedDigest executes q through the normal materialized path
// and hashes the formatted rows in order.
func materializedDigest(ctx context.Context, eng *core.Engine, q string) (uint64, int64, error) {
	res, err := eng.Query(ctx, q)
	if err != nil {
		return 0, 0, err
	}
	src := eng.Source()
	h := fnv.New64a()
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Format(src)
		}
		rowDigest(h, cells)
	}
	return h.Sum64(), int64(len(res.Rows)), nil
}

// streamedDigest executes q through the streaming path, hashing rows as
// they arrive without retaining them.
func streamedDigest(ctx context.Context, eng *core.Engine, q string) (uint64, int64, bool, error) {
	snap := eng.Snapshot()
	st, _, err := eng.StreamQuery(ctx, snap, q, 0)
	if err != nil {
		return 0, 0, false, err
	}
	if _, err := st.Columns(ctx); err != nil {
		return 0, 0, false, err
	}
	src := snap.Source()
	h := fnv.New64a()
	var n int64
	for row := range st.Rows() {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.Format(src)
		}
		rowDigest(h, cells)
		n++
	}
	if _, _, err := st.Wait(); err != nil {
		return 0, 0, false, err
	}
	return h.Sum64(), n, st.Pipelined(), nil
}

// stream is the PR-8 acceptance measurement: the bulk call-edge scan
// consumed materialized (hold every formatted row, the /api/query
// shape) vs streamed (format and drop off the bounded channel, the
// /api/query/stream shape), plus a byte-identity check across the
// paper's figure queries.
func (b *bench) stream(r *smokeResult) error {
	fmt.Println("== Stream: bounded-memory result path vs materialized ==")
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	eng := b.disk
	src := eng.Source()
	ctx := context.Background()

	// Byte identity: every row, in order, must match between the two
	// paths — SKIP/LIMIT/ORDER BY equivalence is covered by unit tests,
	// this covers the paper's real queries at bench scale.
	identical := true
	for _, q := range []struct{ name, text string }{
		{"figure3", figure3Query}, {"figure6", figure6Query}, {"bulk", streamBulkQuery},
	} {
		mh, mn, err := materializedDigest(ctx, eng, q.text)
		if err != nil {
			return fmt.Errorf("stream %s (materialized): %w", q.name, err)
		}
		sh, sn, _, err := streamedDigest(ctx, eng, q.text)
		if err != nil {
			return fmt.Errorf("stream %s (streamed): %w", q.name, err)
		}
		if mh != sh || mn != sn {
			identical = false
			fmt.Printf("MISMATCH %-8s materialized %d rows (%016x) vs streamed %d rows (%016x)\n",
				q.name, mn, mh, sn, sh)
		}
	}
	r.Stream.Identical = identical

	// Memory: both paths warm (the identity pass above touched every
	// page), so the peaks isolate result handling, not I/O.
	var matHold [][]string
	var matRows int64
	start := time.Now()
	matPeak, err := peakHeap(func() error {
		res, err := eng.Query(ctx, streamBulkQuery)
		if err != nil {
			return err
		}
		matHold = make([][]string, len(res.Rows))
		for i, row := range res.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.Format(src)
			}
			matHold[i] = cells
		}
		matRows = int64(len(matHold))
		return nil
	})
	matElapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("stream bulk (materialized): %w", err)
	}
	runtime.KeepAlive(matHold)
	matHold = nil

	var streamRows int64
	pipelined := false
	sink := fnv.New64a() // consume each row so formatting isn't elided
	start = time.Now()
	streamPeak, err := peakHeap(func() error {
		snap := eng.Snapshot()
		st, _, err := eng.StreamQuery(ctx, snap, streamBulkQuery, 0)
		if err != nil {
			return err
		}
		if _, err := st.Columns(ctx); err != nil {
			return err
		}
		for row := range st.Rows() {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Format(src)
			}
			rowDigest(sink, cells)
			streamRows++
		}
		_, _, werr := st.Wait()
		pipelined = st.Pipelined()
		return werr
	})
	streamElapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("stream bulk (streamed): %w", err)
	}

	r.Stream.Query = "bulk call-edge scan"
	r.Stream.Rows = streamRows
	r.Stream.Depth = query.DefaultStreamDepth
	r.Stream.Pipelined = pipelined
	r.Stream.MaterializedMS = float64(matElapsed.Microseconds()) / 1000
	r.Stream.StreamedMS = float64(streamElapsed.Microseconds()) / 1000
	r.Stream.MaterializedPeakBytes = matPeak
	r.Stream.StreamedPeakBytes = streamPeak
	if s := streamElapsed.Seconds(); s > 0 {
		r.Stream.RowsPerSec = float64(streamRows) / s
	}
	fmt.Printf("bulk scan: %d rows (pipelined=%v, identical=%v, mat rows=%d)\n",
		streamRows, pipelined, identical, matRows)
	fmt.Printf("materialized: %s ms, peak %d KB live | streamed: %s ms, peak %d KB live (depth %d), %.0f rows/s\n\n",
		ms(matElapsed), matPeak/1024, ms(streamElapsed), streamPeak/1024,
		query.DefaultStreamDepth, r.Stream.RowsPerSec)
	return nil
}

func (b *bench) figure4Query() string {
	fid, _ := b.mem.FileIDOf("drivers/scsi/sr.c")
	return fmt.Sprintf(`
START n=node:node_auto_index('short_name: get_sectorsize')
WHERE (n) <-[{NAME_FILE_ID: %d, NAME_START_LINE: 236, NAME_START_COL: 9}]- ()
RETURN n`, fid)
}

// --- Figure 7 ---

func (b *bench) figure7() {
	fmt.Println("== Figure 7: Node degree distribution (log-binned) ==")
	dist := graph.DegreeDistribution(b.mem.Source())
	// Log-spaced bins over degree.
	bins := map[int]int64{}
	for _, p := range dist {
		bin := 0
		for d := p.Degree; d > 1; d /= 2 {
			bin++
		}
		bins[bin] += p.Count
	}
	var keys []int
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("%-18s %-12s %s\n", "Degree range", "Node count", "")
	for _, k := range keys {
		// bin k holds degrees [2^k, 2^(k+1)-1]; bin 0 holds 0 and 1.
		lo, hi := 1<<k, 1<<(k+1)-1
		if k == 0 {
			lo = 0
		}
		bar := strings.Repeat("#", barLen(bins[k]))
		fmt.Printf("%-18s %-12d %s\n", fmt.Sprintf("%d..%d", lo, hi), bins[k], bar)
	}
	fmt.Println("\ntop-degree hubs (paper: int ~79K, NULL ~19K):")
	for _, h := range graph.TopDegreeNodes(b.mem.Source(), 8) {
		fmt.Printf("  %-14s %-24s degree %d\n", h.Type, h.Name, h.Degree)
	}
	fmt.Println()
}

func barLen(n int64) int {
	l := 0
	for n > 0 {
		l++
		n /= 2
	}
	return l * 2
}

// --- Table 6 ---

func (b *bench) table6() error {
	fmt.Println("== Table 6: Cypher 1.x index syntax vs 2.x labels ==")
	q1 := `START n=node:node_auto_index('(TYPE: struct TYPE: union TYPE: enum_def) AND SHORT_NAME: packet_command') RETURN n`
	q2 := `MATCH (n:container:type{short_name: "packet_command"}) RETURN n`
	for _, c := range []struct{ name, q string }{{"Cypher 1.x (index)", q1}, {"Cypher 2.x (labels)", q2}} {
		t, count, err := b.runQuery(c.q, false)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s avg %s ms, %d results\n", c.name, ms(t.avg()), count)
	}
	fmt.Println()
	return nil
}

// --- Ablations ---

func (b *bench) ablations() error {
	fmt.Println("== Ablations ==")
	src := b.mem.Source()
	ids, _ := src.Lookup("TYPE: function AND short_name: pci_read_bases")
	if len(ids) == 0 {
		return fmt.Errorf("pci_read_bases missing")
	}

	// A1: bounded closure, Cypher vs embedded.
	var ct timing
	for i := 0; i < *runs; i++ {
		start := time.Now()
		if _, err := query.Run(context.Background(), src, `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*..4]-> m
RETURN distinct m`); err != nil {
			return err
		}
		ct.add(time.Since(start))
	}
	var et timing
	for i := 0; i < *runs; i++ {
		start := time.Now()
		traversal.TransitiveClosure(src, ids[0], traversal.Options{
			Direction: traversal.Out, Types: traversal.Types(model.EdgeCalls), MaxDepth: 4,
		})
		et.add(time.Since(start))
	}
	fmt.Printf("A1 closure depth<=4:    Cypher %s ms vs embedded %s ms (avg)\n", ms(ct.avg()), ms(et.avg()))

	// A4: index lookup vs full scan.
	var it, st timing
	for i := 0; i < *runs; i++ {
		start := time.Now()
		if _, err := src.Lookup("short_name: sr_media_change"); err != nil {
			return err
		}
		it.add(time.Since(start))
		start = time.Now()
		graph.FindNode(src, model.PropShortName, "sr_media_change")
		st.add(time.Since(start))
	}
	fmt.Printf("A4 name lookup:         index %s ms vs scan %s ms (avg)\n", ms(it.avg()), ms(st.avg()))

	// A5: page cache sweep on a property-scan query whose working set
	// exceeds the small caches (every node's properties).
	scanQuery := `START n=node(*) WHERE n.short_name = 'no_such_name' RETURN count(*)`
	for _, pages := range []int{16, 256, 8192} {
		db, err := store.OpenOptions(b.dbDir, store.Options{CachePages: pages})
		if err != nil {
			return err
		}
		// One warm-up pass, then measured passes: small caches keep
		// missing, large ones serve from memory.
		if _, err := query.Run(context.Background(), db, scanQuery); err != nil {
			db.Close()
			return err
		}
		var t timing
		for i := 0; i < *runs; i++ {
			start := time.Now()
			if _, err := query.Run(context.Background(), db, scanQuery); err != nil {
				db.Close()
				return err
			}
			t.add(time.Since(start))
		}
		stats := db.Stats()
		var hits, misses, evict int64
		for _, s := range stats {
			hits += s.Hits
			misses += s.Misses
			evict += s.Evictions
		}
		db.Close()
		fmt.Printf("A5 cache %5d pages:   full prop scan avg %s ms (hits %d / misses %d / evictions %d)\n",
			pages, ms(t.avg()), hits, misses, evict)
	}
	fmt.Println()
	return nil
}

// --- Parallelism smoke (PR 3) ---

// smokeResult is the JSON layout of BENCH_3.json: the speedup evidence
// for the parallel extraction frontend and the lock-striped page cache.
type smokeResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Extract    struct {
		Jobs       int     `json:"jobs"`
		SerialMS   float64 `json:"serial_ms"`
		ParallelMS float64 `json:"parallel_ms"`
		Speedup    float64 `json:"speedup"`
	} `json:"extract"`
	WarmReads struct {
		Goroutines    int     `json:"goroutines"`
		Shards        int     `json:"shards"`
		OpsPerReader  int     `json:"ops_per_reader"`
		SingleMutexMS float64 `json:"single_mutex_ms"`
		ShardedMS     float64 `json:"sharded_ms"`
		Speedup       float64 `json:"speedup"`
	} `json:"warm_reads"`
	// Observability records what the obs registry saw during this run:
	// cold vs. warm page-cache hit ratios (the Table 5 story as counters
	// rather than wall time) and latency histogram summaries.
	Observability struct {
		Cold             cacheRatio  `json:"cold"`
		Warm             cacheRatio  `json:"warm"`
		QueryDuration    histSummary `json:"query_duration_ms"`
		FrontendDuration histSummary `json:"frontend_duration_ms"`
	} `json:"observability"`
	// QCache is the PR-5 subject: the same warm repeated-query workload
	// with the query cache off vs on.
	QCache struct {
		Iterations int     `json:"iterations"`
		Queries    int     `json:"queries"`
		NoCacheMS  float64 `json:"no_cache_ms"`
		CachedMS   float64 `json:"cached_ms"`
		Speedup    float64 `json:"speedup"`
		HitRatio   float64 `json:"hit_ratio"`
	} `json:"qcache"`
	// Planner is the PR-7 subject: the Figure-6 comprehension closure
	// through the naive tree-walk interpreter vs the cost-based
	// planner's visited-set rewrite, both uncached. When the naive run
	// aborts on its step budget, speedup is a lower bound.
	Planner struct {
		NaiveBudgetSteps int64   `json:"naive_budget_steps"`
		NaiveMS          float64 `json:"naive_ms"`
		NaiveAborted     bool    `json:"naive_aborted"`
		PlannedColdMS    float64 `json:"planned_cold_ms"`
		PlannedWarmMS    float64 `json:"planned_warm_ms"`
		Rows             int     `json:"rows"`
		Rewrites         int     `json:"rewrites"`
		Speedup          float64 `json:"speedup"`
	} `json:"planner"`
	// Stream is the PR-8 subject: the same bulk result consumed through
	// the materialized path (build the whole formatted response, like
	// /api/query) vs the streaming path (format row-at-a-time off a
	// bounded channel, like /api/query/stream). Peaks are live-heap
	// deltas over a GC'd baseline; Identical confirms the two paths
	// produced byte-identical rows for the bulk scan and the paper's
	// Figure 3/6 queries.
	Stream struct {
		Query                 string  `json:"query"`
		Rows                  int64   `json:"rows"`
		Depth                 int     `json:"depth"`
		Pipelined             bool    `json:"pipelined"`
		Identical             bool    `json:"identical"`
		MaterializedMS        float64 `json:"materialized_ms"`
		StreamedMS            float64 `json:"streamed_ms"`
		MaterializedPeakBytes int64   `json:"materialized_peak_bytes"`
		StreamedPeakBytes     int64   `json:"streamed_peak_bytes"`
		RowsPerSec            float64 `json:"rows_per_sec"`
	} `json:"stream"`
	// Trace is the PR-9 subject: the warm Figure 3+5 query pair with
	// request tracing off vs fully on (every trace retained, every span
	// recorded), bounding the instrumentation overhead. The gate metric
	// is the untraced throughput — tracing must never have slowed the
	// untraced path, which is the production default for 90% of requests.
	Trace struct {
		Iterations            int     `json:"iterations"`
		UntracedMS            float64 `json:"untraced_ms"`
		TracedMS              float64 `json:"traced_ms"`
		OverheadPct           float64 `json:"overhead_pct"`
		SpansPerQuery         float64 `json:"spans_per_query"`
		UntracedQueriesPerSec float64 `json:"untraced_queries_per_sec"`
	} `json:"trace"`
	// Soak is the PR-10 subject: the full HTTP serving stack under mixed
	// traffic — concurrent query clients, a live admin updater that
	// re-extracts and republishes the store, and a metrics scraper — once
	// against a plain single store (the pre-sharding stack) and once
	// against the same graph partitioned behind the scatter-gather
	// coordinator. No query cache is installed in either mode: the
	// subject is the serving stack, not result reuse.
	Soak struct {
		DurationMS   float64  `json:"duration_ms"`
		QueryClients int      `json:"query_clients"`
		Shards       int      `json:"shards"`
		Unsharded    soakMode `json:"unsharded"`
		Sharded      soakMode `json:"sharded"`
	} `json:"soak"`
}

// soakMode is one serving mode's outcome under the soak traffic mix.
// ErrorRate counts every non-2xx response and transport failure across
// all request kinds; HTTP5xx counts server-fault responses alone (the
// CI gate requires it to be zero).
type soakMode struct {
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	ErrorRate     float64 `json:"error_rate"`
	HTTP5xx       int64   `json:"http_5xx"`
	Updates       int64   `json:"updates"`
	Scrapes       int64   `json:"scrapes"`
}

// cacheRatio is one query batch's page-cache outcome, aggregated over
// every store file.
type cacheRatio struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// histSummary condenses a registry histogram for the JSON record.
type histSummary struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"` // bucket upper bound containing the quantile
	P95MS float64 `json:"p95_ms"`
}

// summarize reads a histogram family from the registry. Quantiles are
// bucket upper bounds (the resolution Prometheus itself would give).
func summarize(name string) histSummary {
	f := obs.Find(obs.Default.Gather(), name)
	if f == nil || len(f.Series) == 0 || f.Series[0].Hist == nil {
		return histSummary{}
	}
	h := f.Series[0].Hist
	quantile := func(q float64) float64 {
		target := int64(math.Ceil(q * float64(h.Count)))
		for i, c := range h.Cumulative {
			if c >= target {
				return h.Bounds[i]
			}
		}
		if n := len(h.Bounds); n > 0 {
			return h.Bounds[n-1] // +Inf bucket: clamp to the last bound
		}
		return 0
	}
	s := histSummary{Count: h.Count, SumMS: h.Sum}
	if h.Count > 0 {
		s.P50MS = quantile(0.50)
		s.P95MS = quantile(0.95)
	}
	return s
}

// cacheDelta aggregates hits/misses across store files between two
// Stats snapshots.
func cacheDelta(before, after map[string]store.CacheStats) cacheRatio {
	var r cacheRatio
	for file, b := range before {
		a := after[file]
		r.Hits += a.Hits - b.Hits
		r.Misses += a.Misses - b.Misses
	}
	if total := r.Hits + r.Misses; total > 0 {
		r.HitRatio = float64(r.Hits) / float64(total)
	}
	return r
}

// observability runs the Figure 3 + Figure 5 queries against the disk
// engine cold (caches dropped) and warm, recording the page-cache hit
// ratios of each batch plus registry histogram summaries.
func (b *bench) observability(r *smokeResult) error {
	ctx := context.Background()
	batch := func() error {
		for _, q := range []string{figure3Query, figure5Query} {
			if _, err := b.disk.Query(ctx, q); err != nil {
				return err
			}
		}
		return nil
	}
	b.disk.DropCaches()
	before := b.disk.CacheStats()
	if err := batch(); err != nil {
		return err
	}
	mid := b.disk.CacheStats()
	if err := batch(); err != nil {
		return err
	}
	after := b.disk.CacheStats()
	r.Observability.Cold = cacheDelta(before, mid)
	r.Observability.Warm = cacheDelta(mid, after)
	r.Observability.QueryDuration = summarize("frappe_query_duration_ms")
	r.Observability.FrontendDuration = summarize("frappe_extract_frontend_duration_ms")
	return nil
}

// traceSpanCount reads the trace package's span counter from the
// registry (0 when the family has not been minted yet).
func traceSpanCount() float64 {
	f := obs.Find(obs.Default.Gather(), "frappe_trace_spans_total")
	if f == nil || len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Value
}

// traceOverhead measures what request tracing costs: the warm Figure
// 3+5 query pair, untraced vs under a root span with SampleRate 1 (the
// worst case — every span recorded, every trace retained and copied
// into the ring). The untraced loop runs the exact code production runs
// for unsampled requests, so its throughput is the regression gate.
func (b *bench) traceOverhead(r *smokeResult) error {
	fmt.Println("== Tracing overhead (PR 9) ==")
	ctx := context.Background()
	const iters = 30
	pair := func(ctx context.Context) error {
		for _, q := range []string{figure3Query, figure5Query} {
			if _, err := b.disk.Query(ctx, q); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm the page cache so both loops measure execution, not I/O.
	if err := pair(ctx); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := pair(ctx); err != nil {
			return err
		}
	}
	untraced := time.Since(start)

	tr := trace.New(trace.Config{Capacity: 64, SampleRate: 1})
	spansBefore := traceSpanCount()
	start = time.Now()
	for i := 0; i < iters; i++ {
		sp := tr.StartRoot("bench.pair", trace.Parent{})
		if err := pair(trace.ContextWith(ctx, sp)); err != nil {
			return err
		}
		sp.End()
	}
	traced := time.Since(start)
	spans := traceSpanCount() - spansBefore

	r.Trace.Iterations = iters
	r.Trace.UntracedMS = float64(untraced) / float64(time.Millisecond)
	r.Trace.TracedMS = float64(traced) / float64(time.Millisecond)
	r.Trace.OverheadPct = 100 * (r.Trace.TracedMS - r.Trace.UntracedMS) / r.Trace.UntracedMS
	r.Trace.SpansPerQuery = spans / float64(iters*2)
	r.Trace.UntracedQueriesPerSec = float64(iters*2) * 1000 / r.Trace.UntracedMS
	fmt.Printf("%-28s %10s %10s %10s %10s\n", "", "untraced", "traced", "overhead", "spans/q")
	fmt.Printf("%-28s %9.1fms %9.1fms %+9.1f%% %10.1f\n\n", "warm fig3+fig5 pair × 30",
		r.Trace.UntracedMS, r.Trace.TracedMS, r.Trace.OverheadPct, r.Trace.SpansPerQuery)
	return nil
}

// smoke measures the two PR-3 subjects directly: the frontend worker
// pool against a serial run, and concurrent warm reads against a
// single-shard (old single-mutex) page cache vs the striped default.
// With -out, the result is also written as JSON.
func (b *bench) smoke(r *smokeResult) error {
	fmt.Println("== Parallelism smoke ==")
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Extraction: best-of-3 serial vs best-of-3 parallel, same workload.
	jobs := r.GOMAXPROCS
	if jobs < 4 {
		jobs = 4
	}
	measure := func(j int) (time.Duration, error) {
		best := time.Duration(0)
		opts := b.workload.ExtractOptions()
		opts.Jobs = j
		for i := 0; i < 3; i++ {
			start := time.Now()
			res, err := extract.Run(b.workload.Build, opts)
			if err != nil {
				return 0, err
			}
			if len(res.Errors) > 0 {
				return 0, res.Errors[0]
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	serial, err := measure(1)
	if err != nil {
		return err
	}
	parallel, err := measure(jobs)
	if err != nil {
		return err
	}
	r.Extract.Jobs = jobs
	r.Extract.SerialMS = float64(serial.Microseconds()) / 1000
	r.Extract.ParallelMS = float64(parallel.Microseconds()) / 1000
	r.Extract.Speedup = float64(serial) / float64(parallel)
	fmt.Printf("extract:    serial %s ms vs %d jobs %s ms (%.2fx)\n",
		ms(serial), jobs, ms(parallel), r.Extract.Speedup)

	// Warm reads: 8 goroutines hammering a fully warmed cache; the only
	// variable between the two runs is the shard count.
	const readers, opsPerReader = 8, 30000
	readBench := func(shards int) (time.Duration, error) {
		db, err := store.OpenOptions(b.dbDir, store.Options{CacheShards: shards})
		if err != nil {
			return 0, err
		}
		defer db.Close()
		n := db.NodeCount()
		for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
			db.NodeProps(id)
			db.Out(id)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerReader; i++ {
					id := graph.NodeID(rng.Intn(int(n)))
					db.NodeProps(id)
					for _, e := range db.Out(id) {
						db.EdgeProps(e)
					}
				}
			}(int64(w))
		}
		wg.Wait()
		return time.Since(start), nil
	}
	single, err := readBench(1)
	if err != nil {
		return err
	}
	sharded, err := readBench(store.DefaultCacheShards)
	if err != nil {
		return err
	}
	r.WarmReads.Goroutines = readers
	r.WarmReads.Shards = store.DefaultCacheShards
	r.WarmReads.OpsPerReader = opsPerReader
	r.WarmReads.SingleMutexMS = float64(single.Microseconds()) / 1000
	r.WarmReads.ShardedMS = float64(sharded.Microseconds()) / 1000
	r.WarmReads.Speedup = float64(single) / float64(sharded)
	fmt.Printf("warm reads: 1 shard %s ms vs %d shards %s ms (%.2fx, %d goroutines)\n\n",
		ms(single), store.DefaultCacheShards, ms(sharded), r.WarmReads.Speedup, readers)

	if err := b.observability(r); err != nil {
		return err
	}
	if err := b.qcacheSmoke(r); err != nil {
		return err
	}
	fmt.Printf("query cache: %d x %d warm queries, no-cache %s ms vs cached %s ms (%.2fx, hit ratio %.1f%%)\n",
		r.QCache.Iterations, r.QCache.Queries,
		fmt.Sprintf("%.2f", r.QCache.NoCacheMS), fmt.Sprintf("%.2f", r.QCache.CachedMS),
		r.QCache.Speedup, 100*r.QCache.HitRatio)
	fmt.Printf("cache: cold %d/%d hits (%.1f%%), warm %d/%d hits (%.1f%%)\n",
		r.Observability.Cold.Hits, r.Observability.Cold.Hits+r.Observability.Cold.Misses,
		100*r.Observability.Cold.HitRatio,
		r.Observability.Warm.Hits, r.Observability.Warm.Hits+r.Observability.Warm.Misses,
		100*r.Observability.Warm.HitRatio)
	fmt.Printf("query latency: %d obs, p50 <= %.2f ms, p95 <= %.2f ms; frontend: %d obs, p50 <= %.2f ms\n\n",
		r.Observability.QueryDuration.Count, r.Observability.QueryDuration.P50MS,
		r.Observability.QueryDuration.P95MS,
		r.Observability.FrontendDuration.Count, r.Observability.FrontendDuration.P50MS)
	return nil
}

// qcacheSmoke measures warm repeated-query throughput with the query
// cache off vs on, against the same on-disk store. The page cache is
// warmed by one pass in both runs, so the delta is purely the query
// layer: parse + execute every time vs one execution and then result
// reuse.
func (b *bench) qcacheSmoke(r *smokeResult) error {
	const iters = 300
	queries := []string{figure3Query, figure5Query}
	measure := func(withCache bool) (time.Duration, *qcache.Stats, error) {
		eng, err := core.Open(b.dbDir)
		if err != nil {
			return 0, nil, err
		}
		defer eng.Close()
		var qc *qcache.Cache
		if withCache {
			qc = qcache.New(qcache.Config{})
			eng.SetQueryCache(qc)
		}
		ctx := context.Background()
		for _, q := range queries { // warm the page cache (and the qcache)
			if _, err := eng.Query(ctx, q); err != nil {
				return 0, nil, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			for _, q := range queries {
				if _, err := eng.Query(ctx, q); err != nil {
					return 0, nil, err
				}
			}
		}
		elapsed := time.Since(start)
		if qc != nil {
			st := qc.Stats()
			return elapsed, &st, nil
		}
		return elapsed, nil, nil
	}
	noCache, _, err := measure(false)
	if err != nil {
		return err
	}
	cached, st, err := measure(true)
	if err != nil {
		return err
	}
	r.QCache.Iterations = iters
	r.QCache.Queries = len(queries)
	r.QCache.NoCacheMS = float64(noCache.Microseconds()) / 1000
	r.QCache.CachedMS = float64(cached.Microseconds()) / 1000
	if cached > 0 {
		r.QCache.Speedup = float64(noCache) / float64(cached)
	}
	if total := st.Hits + st.Misses + st.Shared; total > 0 {
		r.QCache.HitRatio = float64(st.Hits) / float64(total)
	}
	return nil
}

// --- Sharded soak (PR 10) ---

const (
	soakShardCount   = 4
	soakQueryClients = 2
)

// soakQueries is the round-robin query mix: two scatterable full scans
// (the shape the coordinator fans out across every shard), one anchored
// probe the router proves shard-local, and the Figure 3 pipeline (START
// + WITH DISTINCT forces the direct path, so the mix also measures the
// composite's plain execution overhead).
var soakQueries = []string{
	`MATCH (a:function) -[:calls]-> b WHERE b.short_name = 'get_sectorsize' RETURN a.short_name`,
	`MATCH f -[r:calls]-> g WHERE r.use_start_line < 0 RETURN f.short_name`,
	`MATCH (n:function{short_name: 'pci_read_bases'}) -[:calls]-> m RETURN m.short_name`,
	figure3Query,
}

// runSoak drives the mixed-traffic soak against both serving modes and
// records the comparison. With -soak-p99 it doubles as the CI gate:
// any 5xx response or a query p99 above the ceiling fails the run.
func runSoak(r *smokeResult) error {
	fmt.Println("== Sharded serving soak (PR 10) ==")
	if r.GOMAXPROCS == 0 {
		r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}
	dur := *soakDur
	r.Soak.DurationMS = float64(dur) / float64(time.Millisecond)
	r.Soak.QueryClients = soakQueryClients
	r.Soak.Shards = soakShardCount
	fmt.Printf("mix: %d query clients + 1 admin updater + 1 metrics scraper, %v per mode, %d queries round-robin\n",
		soakQueryClients, dur, len(soakQueries))
	un, err := soakRun(1, dur)
	if err != nil {
		return fmt.Errorf("unsharded soak: %w", err)
	}
	sh, err := soakRun(soakShardCount, dur)
	if err != nil {
		return fmt.Errorf("sharded soak: %w", err)
	}
	r.Soak.Unsharded, r.Soak.Sharded = un, sh
	fmt.Printf("%-12s %10s %10s %10s %10s %8s %8s %8s\n",
		"", "queries/s", "p50", "p99", "err-rate", "5xx", "updates", "scrapes")
	for _, row := range []struct {
		name string
		m    soakMode
	}{{"unsharded", un}, {fmt.Sprintf("%d shards", soakShardCount), sh}} {
		fmt.Printf("%-12s %10.1f %8.1fms %8.1fms %9.2f%% %8d %8d %8d\n",
			row.name, row.m.QueriesPerSec, row.m.P50MS, row.m.P99MS,
			100*row.m.ErrorRate, row.m.HTTP5xx, row.m.Updates, row.m.Scrapes)
	}
	if un.QueriesPerSec > 0 {
		fmt.Printf("sharded/unsharded throughput: %.2fx\n\n", sh.QueriesPerSec/un.QueriesPerSec)
	}
	if *soakP99 > 0 {
		ceiling := float64(*soakP99) / float64(time.Millisecond)
		for _, row := range []struct {
			name string
			m    soakMode
		}{{"unsharded", un}, {"sharded", sh}} {
			if row.m.HTTP5xx > 0 {
				return fmt.Errorf("soak gate: %s mode served %d 5xx responses, want 0", row.name, row.m.HTTP5xx)
			}
			if row.m.P99MS > ceiling {
				return fmt.Errorf("soak gate: %s mode query p99 %.1f ms exceeds the %.0f ms ceiling", row.name, row.m.P99MS, ceiling)
			}
		}
		fmt.Printf("soak gate ok: zero 5xx, query p99 within %v in both modes\n\n", *soakP99)
	}
	return nil
}

// soakRun builds one serving stack over a fresh synthetic kernel —
// shards == 1 is the plain single-store server, shards > 1 the
// coordinator over a partitioned store — and drives the mixed traffic
// against it for dur. Admin updates are real end to end: each POST
// appends a function to one compilation unit, re-extracts it through
// the delta session, persists a full crash-consistent epoch, and
// republishes while in-flight requests finish on their pinned state.
func soakRun(shards int, dur time.Duration) (soakMode, error) {
	var m soakMode
	w := kernelgen.Generate(kernelgen.Scaled(*scale))
	sess, res, err := delta.NewSession(w.Build, w.ExtractOptions())
	if err != nil {
		return m, err
	}
	tmp, err := os.MkdirTemp("", "frappe-soak-")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "db")
	epoch := sess.Manifest().Epoch
	rec := delta.Record{
		Epoch:      epoch,
		Time:       time.Now().UTC().Format(time.RFC3339),
		FilesAdded: len(sess.Manifest().Files),
		NodeCount:  res.Graph.NodeCount(),
		EdgeCount:  res.Graph.EdgeCount(),
	}
	if shards > 1 {
		err = delta.PersistIndexWith(dir, sess, res.Graph, rec, shard.Split(res.Graph, shards).Stage)
	} else {
		err = delta.PersistIndex(dir, sess, res.Graph, rec)
	}
	if err != nil {
		return m, err
	}

	// mutate appends one fresh function to the first compilation unit and
	// plans the incremental re-extraction against the live source.
	seq := 0
	mutate := func(old graph.Source) (*delta.Update, delta.Record, error) {
		seq++
		unit := w.Build.Units[0].Source
		w.FS[unit] += fmt.Sprintf("\nint soak_added_%d(int v)\n{\n\treturn v + %d;\n}\n", seq, seq)
		start := time.Now()
		up, err := sess.Update(w.Build, old)
		if err != nil {
			return nil, delta.Record{}, err
		}
		urec := delta.Record{
			Epoch:            up.Epoch,
			Time:             time.Now().UTC().Format(time.RFC3339),
			FilesModified:    1,
			UnitsReextracted: up.Reextracted,
			WallMillis:       float64(time.Since(start).Microseconds()) / 1000,
		}
		if up.Result != nil {
			urec.NodeCount = up.Result.Graph.NodeCount()
			urec.EdgeCount = up.Result.Graph.EdgeCount()
		}
		return up, urec, nil
	}

	var srv *server.Server
	var teardown func() error
	if shards > 1 {
		crd, err := coord.Open(dir, 1, store.Options{})
		if err != nil {
			return m, err
		}
		crd.SetEpoch(epoch, nil)
		srv = server.New(crd.Engine())
		srv.Coord = crd
		srv.Update = func(ctx context.Context) (server.UpdateResult, error) {
			var result server.UpdateResult
			_, err := crd.Update(func(old graph.Source) (*graph.Graph, int64, *core.UpdateSummary, error) {
				up, urec, err := mutate(old)
				if err != nil {
					return nil, 0, nil, err
				}
				if up.NoOp {
					result = server.UpdateResult{Applied: false, Epoch: up.Epoch}
					return nil, 0, nil, nil
				}
				if err := delta.PersistUpdateWith(dir, sess, up.Result.Graph, urec, shard.Split(up.Result.Graph, shards).Stage); err != nil {
					return nil, 0, nil, err
				}
				result = server.UpdateResult{Applied: true, Epoch: up.Epoch}
				return up.Result.Graph, up.Epoch, nil, nil
			})
			return result, err
		}
		teardown = crd.Close
	} else {
		eng, err := core.Open(dir)
		if err != nil {
			return m, err
		}
		eng.SetEpoch(epoch, nil)
		srv = server.New(eng)
		// Updates reopen the committed store and swap the disk-backed
		// source, so this mode keeps serving the same medium the sharded
		// mode serves. Superseded stores stay open until teardown because
		// pinned snapshots may still read them.
		var upMu sync.Mutex
		var retired []*store.DB
		srv.Update = func(ctx context.Context) (server.UpdateResult, error) {
			upMu.Lock()
			defer upMu.Unlock()
			old := eng.Snapshot().Source()
			up, urec, err := mutate(old)
			if err != nil {
				return server.UpdateResult{}, err
			}
			if up.NoOp {
				return server.UpdateResult{Applied: false, Epoch: up.Epoch}, nil
			}
			if err := delta.PersistUpdate(dir, sess, up.Result.Graph, urec); err != nil {
				return server.UpdateResult{}, err
			}
			db, err := store.OpenOptions(dir, store.Options{})
			if err != nil {
				return server.UpdateResult{}, err
			}
			if odb, ok := old.(*store.DB); ok {
				retired = append(retired, odb)
			}
			eng.SwapSource(db, up.Epoch, nil)
			return server.UpdateResult{Applied: true, Epoch: up.Epoch}, nil
		}
		teardown = func() error {
			// eng.Close handles the never-updated case (the snapshot still
			// owns its store); after a swap the tolerant snapshots do not,
			// so close the chain by hand.
			err := eng.Close()
			upMu.Lock()
			defer upMu.Unlock()
			if cur, ok := eng.Snapshot().Source().(*store.DB); ok && len(retired) > 0 {
				cur.Close()
			}
			for _, d := range retired {
				d.Close()
			}
			return err
		}
	}
	srv.SlowThreshold = -1 // soak latencies are the measurement, not log noise

	ts := httptest.NewServer(srv)
	var (
		wg                      sync.WaitGroup
		queries, errs, fivexx   int64
		updatesOK, updatesTried int64
		scrapesOK, scrapesTried int64
	)
	stop := make(chan struct{})
	latCh := make(chan []float64, soakQueryClients)
	post := func(cl *http.Client, path, body string) (int, error) {
		resp, err := cl.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	count := func(code int, err error) bool {
		if code >= 500 {
			atomic.AddInt64(&fivexx, 1)
		}
		if err != nil || code < 200 || code >= 300 {
			atomic.AddInt64(&errs, 1)
			return false
		}
		return true
	}

	for c := 0; c < soakQueryClients; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			cl := ts.Client()
			lats := make([]float64, 0, 4096)
			for i := worker; ; i++ {
				select {
				case <-stop:
					latCh <- lats
					return
				default:
				}
				body, _ := json.Marshal(map[string]string{"query": soakQueries[i%len(soakQueries)]})
				start := time.Now()
				code, err := post(cl, "/api/query", string(body))
				lats = append(lats, float64(time.Since(start).Microseconds())/1000)
				atomic.AddInt64(&queries, 1)
				count(code, err)
			}
		}(c)
	}
	wg.Add(1)
	go func() { // admin updater: a real re-extract + republish every tick
		defer wg.Done()
		cl := ts.Client()
		t := time.NewTicker(400 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				atomic.AddInt64(&updatesTried, 1)
				if count(post(cl, "/api/admin/update", "{}")) {
					atomic.AddInt64(&updatesOK, 1)
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // metrics scraper
		defer wg.Done()
		cl := ts.Client()
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				atomic.AddInt64(&scrapesTried, 1)
				resp, err := cl.Get(ts.URL + "/metrics")
				code := 0
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
				}
				if count(code, err) {
					atomic.AddInt64(&scrapesOK, 1)
				}
			}
		}
	}()

	loadStart := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(loadStart)
	ts.Close()
	if err := teardown(); err != nil {
		return m, err
	}

	var lats []float64
	for i := 0; i < soakQueryClients; i++ {
		lats = append(lats, <-latCh...)
	}
	sort.Float64s(lats)
	m.Queries = queries
	m.QueriesPerSec = float64(queries) / elapsed.Seconds()
	m.P50MS = soakPct(lats, 0.50)
	m.P99MS = soakPct(lats, 0.99)
	if total := queries + updatesTried + scrapesTried; total > 0 {
		m.ErrorRate = float64(errs) / float64(total)
	}
	m.HTTP5xx = fivexx
	m.Updates = updatesOK
	m.Scrapes = scrapesOK
	return m, nil
}

// soakPct reads a quantile from a sorted latency slice (nearest-rank).
func soakPct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// --- Regression gate (-compare) ---

// compareFile is the subset of a smoke JSON the gate tracks. Older
// BENCH files simply decode with zero values for sections they predate;
// those metrics are skipped rather than failed.
type compareFile struct {
	// GOMAXPROCS of the run that produced the file (0 in files that
	// predate it). Wall-clock metrics from runs with different parallelism
	// are not comparable and are skipped by the gate.
	GOMAXPROCS int `json:"gomaxprocs"`
	WarmReads  struct {
		Goroutines   int     `json:"goroutines"`
		OpsPerReader int     `json:"ops_per_reader"`
		ShardedMS    float64 `json:"sharded_ms"`
	} `json:"warm_reads"`
	Observability struct {
		Warm struct {
			HitRatio float64 `json:"hit_ratio"`
		} `json:"warm"`
	} `json:"observability"`
	QCache struct {
		Speedup  float64 `json:"speedup"`
		HitRatio float64 `json:"hit_ratio"`
	} `json:"qcache"`
	Planner struct {
		NaiveAborted  bool    `json:"naive_aborted"`
		PlannedWarmMS float64 `json:"planned_warm_ms"`
	} `json:"planner"`
	Stream struct {
		Rows                  int64   `json:"rows"`
		Pipelined             bool    `json:"pipelined"`
		Identical             bool    `json:"identical"`
		MaterializedPeakBytes int64   `json:"materialized_peak_bytes"`
		StreamedPeakBytes     int64   `json:"streamed_peak_bytes"`
		RowsPerSec            float64 `json:"rows_per_sec"`
	} `json:"stream"`
	Trace struct {
		UntracedQueriesPerSec float64 `json:"untraced_queries_per_sec"`
	} `json:"trace"`
	Soak struct {
		Unsharded soakMode `json:"unsharded"`
		Sharded   soakMode `json:"sharded"`
	} `json:"soak"`
}

// warmThroughput converts the warm-read measurement into ops/ms so two
// files with different op counts still compare.
func (f *compareFile) warmThroughput() float64 {
	if f.WarmReads.ShardedMS <= 0 {
		return 0
	}
	return float64(f.WarmReads.Goroutines*f.WarmReads.OpsPerReader) / f.WarmReads.ShardedMS
}

// plannerThroughput converts the planned Figure-6 closure latency into
// queries/sec so higher-is-better holds like the other metrics.
func (f *compareFile) plannerThroughput() float64 {
	if f.Planner.PlannedWarmMS <= 0 {
		return 0
	}
	return 1000 / f.Planner.PlannedWarmMS
}

// runCompare is the CI bench gate: higher-is-better metrics from the new
// file must be at least (1 - tolerance) of the old file's.
func runCompare(args []string, tol float64) error {
	// The flag package stops at the first positional, so accept a
	// trailing `-tolerance X` by hand: the documented
	// `frappe-bench -compare old.json new.json -tolerance 0.25` works.
	var files []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-tolerance" || args[i] == "--tolerance" {
			if i+1 >= len(args) {
				return fmt.Errorf("-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return fmt.Errorf("bad -tolerance %q: %w", args[i+1], err)
			}
			tol = v
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		return fmt.Errorf("usage: frappe-bench -compare old.json new.json [-tolerance 0.25]")
	}
	load := func(path string) (*compareFile, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f compareFile
		if err := json.Unmarshal(buf, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &f, nil
	}
	oldF, err := load(files[0])
	if err != nil {
		return err
	}
	newF, err := load(files[1])
	if err != nil {
		return err
	}

	// Committed BENCH files and CI runs alike are produced under a pinned
	// GOMAXPROCS >= 4 (the bench job exports GOMAXPROCS=4). A file below
	// that means the wall-clock gates would silently skip or compare
	// starved runs, so fail loudly instead of letting the gate rot.
	for _, f := range []struct {
		path string
		f    *compareFile
	}{{files[0], oldF}, {files[1], newF}} {
		if f.f.GOMAXPROCS != 0 && f.f.GOMAXPROCS < 4 {
			return fmt.Errorf("%s: recorded gomaxprocs %d < 4; wall-clock gates need a pinned >= 4-proc run (export GOMAXPROCS=4 and regenerate)",
				f.path, f.f.GOMAXPROCS)
		}
	}
	// Wall-clock metrics (throughput, speedups) measured under different
	// GOMAXPROCS are apples to oranges: a laptop file vs a 4-core CI
	// runner would gate on the hardware, not the code. Ratios survive.
	procsDiffer := oldF.GOMAXPROCS != 0 && newF.GOMAXPROCS != 0 &&
		oldF.GOMAXPROCS != newF.GOMAXPROCS

	metrics := []struct {
		name      string
		old, new  float64
		wallClock bool
	}{
		{"warm_read_throughput_ops_per_ms", oldF.warmThroughput(), newF.warmThroughput(), true},
		{"warm_page_cache_hit_ratio", oldF.Observability.Warm.HitRatio, newF.Observability.Warm.HitRatio, false},
		{"qcache_speedup", oldF.QCache.Speedup, newF.QCache.Speedup, true},
		{"qcache_hit_ratio", oldF.QCache.HitRatio, newF.QCache.HitRatio, false},
		{"planner_fig6_queries_per_s", oldF.plannerThroughput(), newF.plannerThroughput(), true},
		{"stream_rows_per_sec", oldF.Stream.RowsPerSec, newF.Stream.RowsPerSec, true},
		{"untraced_queries_per_sec", oldF.Trace.UntracedQueriesPerSec, newF.Trace.UntracedQueriesPerSec, true},
	}
	fmt.Printf("bench gate: %s -> %s (tolerance %.0f%%)\n", files[0], files[1], tol*100)
	failed := 0
	for _, m := range metrics {
		switch {
		case m.wallClock && procsDiffer:
			fmt.Printf("  SKIP %-34s gomaxprocs differ (%d vs %d); wall-clock not comparable\n",
				m.name, oldF.GOMAXPROCS, newF.GOMAXPROCS)
		case m.old <= 0:
			fmt.Printf("  SKIP %-34s not present in %s\n", m.name, files[0])
		case m.new >= m.old*(1-tol):
			fmt.Printf("  PASS %-34s %.3f -> %.3f (%+.1f%%)\n", m.name, m.old, m.new, 100*(m.new/m.old-1))
		default:
			failed++
			fmt.Printf("  FAIL %-34s %.3f -> %.3f (%+.1f%%)\n", m.name, m.old, m.new, 100*(m.new/m.old-1))
		}
	}
	// Absolute wall-clock budget on the uncached planned Figure-6
	// closure: relative tolerance can't catch a planner regression that
	// slipped into both files, and the acceptance story is precisely
	// "milliseconds where the naive interpreter aborts".
	const plannerBudgetMS = 1500
	if w := newF.Planner.PlannedWarmMS; w > 0 {
		if w <= plannerBudgetMS {
			fmt.Printf("  PASS %-34s %.2f ms <= %d ms budget\n", "planner_fig6_wall_clock", w, plannerBudgetMS)
		} else {
			failed++
			fmt.Printf("  FAIL %-34s %.2f ms > %d ms budget\n", "planner_fig6_wall_clock", w, plannerBudgetMS)
		}
	}
	// Absolute stream checks (skipped for files that predate the stream
	// experiment). Identity is exact: streamed rows must match the
	// materialized path byte for byte. The memory check is deliberately
	// loose — heap sampling is noisy — but a streamed peak at or above
	// the materialized peak means the bounded channel is not bounding.
	if s := newF.Stream; s.Rows > 0 {
		if s.Identical {
			fmt.Printf("  PASS %-34s streamed rows match materialized (%d rows)\n", "stream_identical", s.Rows)
		} else {
			failed++
			fmt.Printf("  FAIL %-34s streamed rows differ from materialized\n", "stream_identical")
		}
		if s.StreamedPeakBytes < s.MaterializedPeakBytes {
			fmt.Printf("  PASS %-34s streamed peak %d KB < materialized %d KB\n",
				"stream_bounded_memory", s.StreamedPeakBytes/1024, s.MaterializedPeakBytes/1024)
		} else {
			failed++
			fmt.Printf("  FAIL %-34s streamed peak %d KB >= materialized %d KB\n",
				"stream_bounded_memory", s.StreamedPeakBytes/1024, s.MaterializedPeakBytes/1024)
		}
	}
	// Soak checks (skipped for files that predate the soak experiment):
	// the partitioned stack must hold its own against the single-store
	// server on mixed traffic, and neither mode may have served a 5xx.
	if sk := newF.Soak; sk.Sharded.Queries > 0 && sk.Unsharded.Queries > 0 {
		if sk.Sharded.QueriesPerSec >= sk.Unsharded.QueriesPerSec*(1-tol) {
			fmt.Printf("  PASS %-34s sharded %.1f q/s vs unsharded %.1f q/s\n",
				"soak_sharded_throughput", sk.Sharded.QueriesPerSec, sk.Unsharded.QueriesPerSec)
		} else {
			failed++
			fmt.Printf("  FAIL %-34s sharded %.1f q/s < unsharded %.1f q/s beyond tolerance\n",
				"soak_sharded_throughput", sk.Sharded.QueriesPerSec, sk.Unsharded.QueriesPerSec)
		}
		if n := sk.Sharded.HTTP5xx + sk.Unsharded.HTTP5xx; n == 0 {
			fmt.Printf("  PASS %-34s zero 5xx under mixed traffic\n", "soak_no_5xx")
		} else {
			failed++
			fmt.Printf("  FAIL %-34s %d 5xx responses under mixed traffic\n", "soak_no_5xx", n)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", failed, tol*100)
	}
	fmt.Println("bench gate ok")
	return nil
}

// --- Temporal (A3 / §6.3) ---

func (b *bench) temporal() error {
	fmt.Println("== Temporal storage (paper §6.3) ==")
	w1 := kernelgen.Generate(kernelgen.Tiny())
	r1, err := w1.Extract()
	if err != nil {
		return err
	}
	s := temporal.New()
	s.AddVersion("v1", r1.Graph)
	// Five small evolutions: append one function per version.
	prev := w1
	for v := 2; v <= 6; v++ {
		next := kernelgen.Generate(kernelgen.Tiny())
		next.FS["drivers/scsi/sr.c"] = prev.FS["drivers/scsi/sr.c"] +
			fmt.Sprintf("\nint sr_patch_%d(int v)\n{\n\treturn v + %d;\n}\n", v, v)
		rn, err := next.Extract()
		if err != nil {
			return err
		}
		s.AddVersion(fmt.Sprintf("v%d", v), rn.Graph)
		prev = next
	}
	st := s.Stats()
	fmt.Printf("%-10s %-14s %-14s\n", "Version", "Full (bytes)", "Delta (bytes)")
	for i := range st.FullBytes {
		fmt.Printf("v%-9d %-14d %-14d\n", i+1, st.FullBytes[i], st.DeltaBytes[i])
	}
	fmt.Printf("total: full copies %d bytes vs delta chain %d bytes (%.1fx saving)\n",
		st.TotalFull, st.TotalDelta+st.FullBytes[0],
		float64(st.TotalFull)/float64(st.TotalDelta+st.FullBytes[0]))
	impact, err := s.ImpactOfChange(0, 5)
	if err != nil {
		return err
	}
	fmt.Printf("change impact v1->v6: %d functions affected\n\n", len(impact))
	return nil
}

const figure3Query = `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`

const figure5Query = `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`

const figure6Query = `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`
