// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) plus the ablations of DESIGN.md. The absolute numbers
// depend on this machine and on the synthetic-kernel scale; the shapes
// are what reproduce the paper:
//
//	Table 3  — BenchmarkTable3GraphMetrics        (node/edge counts, 1:8 density)
//	Table 4  — BenchmarkTable4DatabaseSize        (store size breakdown)
//	Table 5  — BenchmarkTable5*                   (4 use-case queries, cold vs warm)
//	Figure 7 — BenchmarkFigure7DegreeDistribution (heavy-tailed degrees)
//	Table 6  — BenchmarkTable6LabelScan           (1.x index vs 2.x label syntax)
//	A1..A5   — BenchmarkAblation*                 (design-choice ablations)
//
// cmd/frappe-bench prints the same experiments as paper-style tables
// with the 10-run cold/warm min/avg/max protocol of Table 5.
package frappe

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"frappe/internal/core"
	"frappe/internal/extract"
	"frappe/internal/graph"
	"frappe/internal/kernelgen"
	"frappe/internal/model"
	"frappe/internal/query"
	"frappe/internal/store"
	"frappe/internal/temporal"
	"frappe/internal/traversal"
)

// benchEnv is the shared benchmark state: the default-scale synthetic
// kernel, extracted once, persisted once, opened read-only.
type benchEnv struct {
	workload *kernelgen.Workload
	mem      *core.Engine
	disk     *core.Engine
	dir      string
	fig4     string // Figure 4 query with this run's FILE_ID baked in
}

var (
	envOnce sync.Once
	env     *benchEnv
	envErr  error
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		w := kernelgen.Generate(kernelgen.Default())
		eng, errs, err := Index(w.Build, w.ExtractOptions())
		if err != nil {
			envErr = err
			return
		}
		if len(errs) > 0 {
			envErr = fmt.Errorf("extraction errors: %v", errs[0])
			return
		}
		dir, err := os.MkdirTemp("", "frappe-bench-")
		if err != nil {
			envErr = err
			return
		}
		dbDir := filepath.Join(dir, "db")
		if err := eng.Save(dbDir); err != nil {
			envErr = err
			return
		}
		disk, err := Open(dbDir)
		if err != nil {
			envErr = err
			return
		}
		fid, ok := eng.FileIDOf("drivers/scsi/sr.c")
		if !ok {
			envErr = fmt.Errorf("sr.c has no FILE_ID")
			return
		}
		env = &benchEnv{
			workload: w,
			mem:      eng,
			disk:     disk,
			dir:      dbDir,
			fig4: fmt.Sprintf(`
START n=node:node_auto_index('short_name: get_sectorsize')
WHERE (n) <-[{NAME_FILE_ID: %d, NAME_START_LINE: 236, NAME_START_COL: 9}]- ()
RETURN n`, fid),
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

const figure3Query = `
START m=node:node_auto_index('short_name: wakeup.elf')
MATCH m -[:compiled_from|linked_from*]-> f
WITH distinct f
MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
RETURN distinct n`

const figure5Query = `
START from=node:node_auto_index('short_name: sr_media_change'),
      to=node:node_auto_index('short_name: get_sectorsize'),
      b=node:node_auto_index('short_name: packet_command')
MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
WITH to, from, writer, write
MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
RETURN distinct writer, write.use_start_line`

const figure6Query = `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*]-> m
RETURN distinct m`

// --- Table 3 ---

// BenchmarkTable3GraphMetrics measures the full extraction pipeline
// (generate → preprocess → parse → extract → link) and reports the graph
// metrics of Table 3.
func BenchmarkTable3GraphMetrics(b *testing.B) {
	var m graph.Metrics
	for i := 0; i < b.N; i++ {
		w := kernelgen.Generate(kernelgen.Default())
		res, err := extract.Run(w.Build, w.ExtractOptions())
		if err != nil {
			b.Fatal(err)
		}
		m = graph.ComputeMetrics(res.Graph)
	}
	b.ReportMetric(float64(m.Nodes), "nodes")
	b.ReportMetric(float64(m.Edges), "edges")
	b.ReportMetric(m.Density, "edges/node")
}

// --- Table 4 ---

// BenchmarkTable4DatabaseSize measures store persistence and reports the
// size breakdown of Table 4 (MB per store category).
func BenchmarkTable4DatabaseSize(b *testing.B) {
	e := benchSetup(b)
	var sizes store.SizeBreakdown
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), "db")
		if err := e.mem.Save(dir); err != nil {
			b.Fatal(err)
		}
		var err error
		sizes, err = store.Sizes(dir)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(store.MB(sizes.Properties), "props-MB")
	b.ReportMetric(store.MB(sizes.Nodes), "nodes-MB")
	b.ReportMetric(store.MB(sizes.Relationships), "rels-MB")
	b.ReportMetric(store.MB(sizes.Indexes), "index-MB")
	b.ReportMetric(store.MB(sizes.Total), "total-MB")
}

// --- Table 5 ---

func benchQuery(b *testing.B, text string, cold bool) {
	e := benchSetup(b)
	ctx := context.Background()
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cold {
			b.StopTimer()
			e.disk.DropCaches()
			b.StartTimer()
		}
		res, err := e.disk.Query(ctx, text)
		if err != nil {
			b.Fatal(err)
		}
		count = res.Count()
	}
	b.ReportMetric(float64(count), "results")
}

func BenchmarkTable5CodeSearchCold(b *testing.B) { benchQuery(b, figure3Query, true) }
func BenchmarkTable5CodeSearchWarm(b *testing.B) { benchQuery(b, figure3Query, false) }

func BenchmarkTable5CrossReferencingCold(b *testing.B) { benchQuery(b, benchSetup(b).fig4, true) }
func BenchmarkTable5CrossReferencingWarm(b *testing.B) { benchQuery(b, benchSetup(b).fig4, false) }

func BenchmarkTable5DebuggingCold(b *testing.B) { benchQuery(b, figure5Query, true) }
func BenchmarkTable5DebuggingWarm(b *testing.B) { benchQuery(b, figure5Query, false) }

// BenchmarkTable5ComprehensionCypher runs Figure 6 the way the paper
// did: through the Cypher engine, whose path-enumerating semantics blow
// up; a deadline aborts it, reproducing "> 15 mins, aborted" in
// miniature. The metric "aborted" is 1 when the deadline fired.
func BenchmarkTable5ComprehensionCypher(b *testing.B) {
	e := benchSetup(b)
	aborted := 0.0
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := e.disk.Query(ctx, figure6Query)
		cancel()
		if err != nil {
			aborted = 1
		}
	}
	b.ReportMetric(aborted, "aborted")
}

// BenchmarkTable5ComprehensionEmbedded computes the same closure through
// the embedded traversal API (the paper's footnote: ~20ms via Neo4j's
// Java API vs >15 min via Cypher).
func BenchmarkTable5ComprehensionEmbedded(b *testing.B) {
	e := benchSetup(b)
	ids, err := e.disk.Source().Lookup("TYPE: function AND short_name: pci_read_bases")
	if err != nil || len(ids) == 0 {
		b.Fatalf("pci_read_bases: %v %v", ids, err)
	}
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closure := traversal.TransitiveClosure(e.disk.Source(), ids[0], traversal.Options{
			Direction: traversal.Out,
			Types:     traversal.Types(model.EdgeCalls),
		})
		n = len(closure)
	}
	b.ReportMetric(float64(n), "results")
}

// --- Figure 7 ---

// BenchmarkFigure7DegreeDistribution computes the node degree
// distribution and reports its extremes (the paper's int≈79K hub story).
func BenchmarkFigure7DegreeDistribution(b *testing.B) {
	e := benchSetup(b)
	var dist []graph.DegreePoint
	for i := 0; i < b.N; i++ {
		dist = graph.DegreeDistribution(e.mem.Source())
	}
	b.ReportMetric(float64(dist[len(dist)-1].Degree), "max-degree")
	b.ReportMetric(float64(len(dist)), "distinct-degrees")
}

// --- Table 6 ---

// BenchmarkTable6LabelScan compares the Cypher 1.x index syntax with the
// 2.x grouped-label syntax for the same container+type query.
func BenchmarkTable6LabelScan(b *testing.B) {
	e := benchSetup(b)
	ctx := context.Background()
	b.Run("Cypher1xIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.disk.Query(ctx, `START n=node:node_auto_index('(TYPE: struct TYPE: union TYPE: enum_def) AND SHORT_NAME: packet_command') RETURN n`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Cypher2xLabels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.disk.Query(ctx, `MATCH (n:container:type{short_name: "packet_command"}) RETURN n`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations ---

// BenchmarkAblationClosureCypherVsEmbedded (A1): the same depth-bounded
// closure through Cypher's path enumeration vs the embedded visited-set
// traversal.
func BenchmarkAblationClosureCypherVsEmbedded(b *testing.B) {
	e := benchSetup(b)
	ctx := context.Background()
	ids, _ := e.mem.Source().Lookup("TYPE: function AND short_name: pci_read_bases")
	bounded := `
START n=node:node_auto_index('short_name: pci_read_bases')
MATCH n -[:calls*..4]-> m
RETURN distinct m`
	b.Run("Cypher", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.mem.Query(ctx, bounded); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Embedded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			traversal.TransitiveClosure(e.mem.Source(), ids[0], traversal.Options{
				Direction: traversal.Out,
				Types:     traversal.Types(model.EdgeCalls),
				MaxDepth:  4,
			})
		}
	})
}

// BenchmarkAblationRefNodesVsRefEdges (A2): per-file reference listing
// under the standard edge model (filter every symbol's in-edges on
// USE_FILE_ID) vs the reference-as-node model of §6.2 (one containment
// hop from the file).
func BenchmarkAblationRefNodesVsRefEdges(b *testing.B) {
	e := benchSetup(b)
	src := e.mem.Source()
	fid, _ := e.mem.FileIDOf("drivers/scsi/sr.c")
	fileNode, _ := e.mem.FileNodeByID(fid)

	fileByID := map[int64]graph.NodeID{}
	n := src.NodeCount()
	for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
		if src.NodeType(id) == model.NodeFile {
			if v, ok := src.NodeProp(id, "FILE_ID"); ok {
				fileByID[v.AsInt()] = id
			}
		}
	}
	conv := graph.ConvertRefsToNodes(src, fileByID)

	b.Run("EdgeModelScan", func(b *testing.B) {
		count := 0
		for i := 0; i < b.N; i++ {
			count = 0
			ecount := src.EdgeCount()
			for eid := graph.EdgeID(0); eid < graph.EdgeID(ecount); eid++ {
				_, _, t := src.EdgeEnds(eid)
				if !model.ReferenceEdges[t] || t == model.EdgeIsaType {
					continue
				}
				if v, ok := src.EdgeProp(eid, model.PropUseFileID); ok && v.AsInt() == fid {
					count++
				}
			}
		}
		b.ReportMetric(float64(count), "refs")
	})
	b.Run("RefNodeModel", func(b *testing.B) {
		count := 0
		for i := 0; i < b.N; i++ {
			count = 0
			for _, eid := range conv.Out(fileNode) {
				if _, _, t := conv.EdgeEnds(eid); t == model.EdgeContains {
					count++
				}
			}
		}
		b.ReportMetric(float64(count), "refs")
	})
}

// BenchmarkAblationTemporalStorage (A3): bytes per version, full copies
// vs the delta chain of §6.3.
func BenchmarkAblationTemporalStorage(b *testing.B) {
	w1 := kernelgen.Generate(kernelgen.Tiny())
	r1, err := w1.Extract()
	if err != nil {
		b.Fatal(err)
	}
	w2 := kernelgen.Generate(kernelgen.Tiny())
	w2.FS["drivers/scsi/sr.c"] += "\nint sr_new_tail(int v)\n{\n\treturn v + 1;\n}\n"
	r2, err := w2.Extract()
	if err != nil {
		b.Fatal(err)
	}
	var st temporal.StorageStats
	for i := 0; i < b.N; i++ {
		s := temporal.New()
		s.AddVersion("v1", r1.Graph)
		s.AddVersion("v2", r2.Graph)
		st = s.Stats()
	}
	b.ReportMetric(float64(st.TotalFull), "full-bytes")
	b.ReportMetric(float64(st.TotalDelta), "delta-bytes")
	b.ReportMetric(float64(st.TotalFull)/float64(st.TotalDelta+1), "ratio")
}

// BenchmarkAblationIndexVsScan (A4): anchored index lookup vs full node
// scan for the same search.
func BenchmarkAblationIndexVsScan(b *testing.B) {
	e := benchSetup(b)
	src := e.mem.Source()
	b.Run("Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := src.Lookup("short_name: sr_media_change"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.FindNode(src, model.PropShortName, "sr_media_change")
		}
	})
}

// BenchmarkAblationPageCacheSweep (A5): Figure 3's query under shrinking
// page caches — the cold/warm continuum.
func BenchmarkAblationPageCacheSweep(b *testing.B) {
	e := benchSetup(b)
	ctx := context.Background()
	for _, pages := range []int{16, 256, 8192} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			db, err := store.OpenOptions(e.dir, store.Options{CachePages: pages})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := query.Run(ctx, db, figure3Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtractParallel: the PR-3 tentpole on the extraction side —
// the per-TU frontend fanned across a worker pool. Serial (jobs=1) vs
// one worker per CPU over the default synthetic kernel; the merge is
// deterministic, so the parallel graph is identical to the serial one.
func BenchmarkExtractParallel(b *testing.B) {
	w := kernelgen.Generate(kernelgen.Default())
	// At least four workers, so single-core CI still exercises the pool
	// machinery (queueing, ordered merge) rather than degenerating to
	// the serial path.
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4
	}
	for _, jobs := range []int{1, par} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			opts := w.ExtractOptions()
			opts.Jobs = jobs
			for i := 0; i < b.N; i++ {
				res, err := extract.Run(w.Build, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatal(res.Errors[0])
				}
			}
		})
	}
}

// BenchmarkConcurrentWarmReads: the PR-3 tentpole on the read side —
// warm page-cache reads from GOMAXPROCS goroutines against a
// single-shard cache (the old single-mutex pager, reproduced exactly)
// vs the default lock-striped one. The gap is pure lock contention:
// both configurations serve every read from cache.
func BenchmarkConcurrentWarmReads(b *testing.B) {
	e := benchSetup(b)
	for _, shards := range []int{1, store.DefaultCacheShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, err := store.OpenOptions(e.dir, store.Options{CacheShards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			// Warm the cache so the measured region never touches disk.
			n := db.NodeCount()
			for id := graph.NodeID(0); id < graph.NodeID(n); id++ {
				db.NodeProps(id)
				db.Out(id)
			}
			b.ResetTimer()
			// ≥4 concurrent readers per P, so the contention comparison
			// holds even on a single-core runner.
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					id := graph.NodeID(rng.Intn(int(n)))
					db.NodeProps(id)
					for _, eid := range db.Out(id) {
						db.EdgeProps(eid)
					}
				}
			})
		})
	}
}
